package otrace

import (
	"testing"
	"time"
)

// BenchmarkSpanIngestOverhead measures the per-packet tracer cost at the
// two operating points that matter: disabled (the nil tracer every
// untraced deployment runs — must stay allocation-free and near-zero)
// and enabled (Start + FinishUpdate on an unsampled packet — the hot
// path when tracing is on).
func BenchmarkSpanIngestOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := tr.Start(0)
			if c.Live() {
				b.Fatal("nil tracer produced a live Ctx")
			}
			tr.FinishUpdate("sess", uint64(i), &c, 0)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tr, err := New(Config{
			SampleEvery: 1 << 30, // never head-sample: measure the unretained path
			SLO:         &SLOConfig{Target: 250 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := tr.Start(0)
			ms := int64(time.Millisecond)
			c.MailboxEnq = c.Recv + ms
			c.QueueEnq = c.MailboxEnq + ms
			c.QueueDeq = c.QueueEnq + ms
			c.ComputeEnd = c.QueueDeq + ms
			tr.FinishUpdate("sess", uint64(i), &c, c.ComputeEnd+ms)
		}
	})
}
