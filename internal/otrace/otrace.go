// Package otrace is the end-to-end latency observability layer: it
// follows one CSI packet from the client's send through the fleet frame
// boundary, the shard mailbox, the session Monitor's ingest queue, the
// stride computation and the delivery pump, to the subscriber's long-poll
// pickup — and answers, per update, "how old was the data behind this
// estimate, and where did that time go?".
//
// The package follows the same two contracts as internal/metrics
// (DESIGN §9):
//
//   - Zero overhead when disabled. A nil *Tracer is the disabled state:
//     Start returns a zero Ctx, a zero Ctx is "not traced", and every
//     instrumented site gates its clock reads on Ctx.Live() — a monitor
//     without a tracer reads no clock and allocates nothing.
//   - Dependency-free. Only the standard library and internal/metrics
//     (itself stdlib-only) are imported; the fleet, core and store layers
//     import otrace, never the other way around.
//
// A packet's journey is recorded as a chain of timestamps stamped into a
// small Ctx value that rides the existing channel handoffs (the fleet
// ingest mailbox, the Monitor ingest queue, the Update). When the update
// it produced is published, the tracer turns the chain into contiguous
// segments:
//
//	frame    Recv → MailboxEnq   frame decode + routing
//	mailbox  MailboxEnq → QueueEnq   shard mailbox dwell
//	queue    QueueEnq → QueueDeq    Monitor ingest-queue dwell
//	compute  QueueDeq → ComputeEnd  quarantine + stride computation
//	deliver  ComputeEnd → publish   update channel + drain pump
//
// The segments telescope: their sum is exactly the publish−Recv total,
// so a decomposition always accounts for all of the measured latency.
// Sampled spans (head sampling 1-in-N, plus every span slower than a
// threshold) are kept in a bounded ring served at /debug/spans; every
// update — sampled or not — feeds the latency histograms and the SLO
// burn-rate tracker (slo.go).
//
// Clock handling: all server-side timestamps come from Now(), which is
// anchored to one wall-clock reading at process start and advances on
// the monotonic clock — segment arithmetic is immune to wall-clock
// steps. The client-send timestamp in an ingest frame is the peer's wall
// clock; the frame→client skew makes it advisory only, so it is reported
// on the span but never folded into a segment.
package otrace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phasebeat/internal/metrics"
)

// SpansSchema versions the /debug/spans JSON layout.
const SpansSchema = "phasebeat-spans/v1"

// base anchors Now(): one wall reading at init, monotonic from there.
var base = time.Now()

// Now returns a monotonic timestamp in nanoseconds, wall-anchored at
// process start (so values are comparable to Unix nanos for display but
// differences are monotonic-clock exact). It is never zero.
func Now() int64 { return base.UnixNano() + int64(time.Since(base)) }

// WallTime converts a Now()-style timestamp back to wall clock.
func WallTime(nanos int64) time.Time { return time.Unix(0, nanos) }

// Stage is one pipeline stage's contribution to a span's compute
// segment, captured from the existing core.StageObserver timings.
type Stage struct {
	Name  string `json:"name"`
	Nanos int64  `json:"nanos"`
}

// Ctx is the per-packet trace context threaded through the ingest path
// by value. The zero Ctx means "not traced" and every consumer must
// treat it as such (Live reports it); all timestamps are Now() values.
type Ctx struct {
	// ID numbers traced packets from 1 per Tracer.
	ID uint64
	// Sampled marks a head-sampled packet whose span is retained even
	// when fast.
	Sampled bool
	// ClientSend is the peer's wall-clock send timestamp in Unix nanos
	// (0 when the peer did not stamp one — the pre-rev protocol).
	ClientSend int64
	// Recv is stamped at the fleet frame boundary, before frame decode.
	Recv int64
	// MailboxEnq is stamped just before the shard mailbox handoff.
	MailboxEnq int64
	// QueueEnq is stamped just before the Monitor ingest-queue handoff.
	QueueEnq int64
	// QueueDeq is stamped when the Monitor worker dequeues the packet.
	QueueDeq int64
	// ComputeEnd is stamped after the stride that this packet completed.
	ComputeEnd int64
	// Stages carries the stride's per-stage timings (nil until the
	// compute segment finishes, and only when a tracer is wired).
	Stages []Stage
}

// Live reports whether the packet is being traced at all.
func (c *Ctx) Live() bool { return c != nil && c.Recv != 0 }

// Segment is one named, contiguous slice of a span's total latency.
type Segment struct {
	Name  string `json:"name"`
	Nanos int64  `json:"nanos"`
}

// Span segment names, in path order.
const (
	SegFrame   = "frame"
	SegMailbox = "mailbox"
	SegQueue   = "queue"
	SegCompute = "compute"
	SegDeliver = "deliver"
)

// SpanRecord is one retained end-to-end span: the ingest→update journey
// of the packet that completed a stride, decomposed into segments that
// sum exactly to TotalNanos. PickupNanos and StoreNanos are attached
// after the fact (long-poll pickup dwell, archive append duration) and
// sit outside the total. Access a SpanRecord through the Tracer, which
// serializes mutation against /debug/spans reads.
type SpanRecord struct {
	ID  uint64 `json:"id"`
	Key string `json:"key"`
	// Seq is the session's delivery sequence number for the update.
	Seq uint64 `json:"seq"`
	// StartNanos is the Recv timestamp; Start is its wall form.
	StartNanos int64  `json:"start_nanos"`
	Start      string `json:"start"`
	// TotalNanos is publish − Recv: the ingest→update latency the SLO
	// tracks. Segments sum to it exactly.
	TotalNanos int64     `json:"total_nanos"`
	Segments   []Segment `json:"segments"`
	// Stages decomposes the compute segment by pipeline stage.
	Stages []Stage `json:"stages,omitempty"`
	// ClientSendNanos is the advisory peer wall-clock send time (0 when
	// absent); cross-host skew makes it unusable for segment math.
	ClientSendNanos int64 `json:"client_send_nanos,omitempty"`
	// Slow marks a span retained because it crossed SlowThreshold
	// (rather than, or in addition to, head sampling).
	Slow bool `json:"slow,omitempty"`
	// Breach marks a span whose total exceeded the SLO target.
	Breach bool `json:"breach,omitempty"`
	// PickupNanos is the publish→Session.Wait-pickup dwell of the first
	// subscriber to see this update (0 until picked up).
	PickupNanos int64 `json:"pickup_nanos,omitempty"`
	// StoreNanos is the trace-store append duration for the update.
	StoreNanos int64 `json:"store_nanos,omitempty"`
}

// Config configures a Tracer. The zero value enables tracing with the
// documented defaults and no SLO (Observe still feeds histograms).
type Config struct {
	// SampleEvery is the head-sampling period: one in every N traced
	// packets is marked Sampled and its span retained regardless of
	// speed. 0 selects 16; negative disables head sampling (slow spans
	// are still retained).
	SampleEvery int
	// SlowThreshold retains every span at least this slow, regardless of
	// sampling. 0 selects 250ms; negative disables slow retention.
	SlowThreshold time.Duration
	// RingCapacity bounds the retained-span ring. 0 selects 256.
	RingCapacity int
	// SLO, when non-nil, enables ingest→update latency SLO tracking with
	// multi-window burn rates (see SLOConfig).
	SLO *SLOConfig
	// MetricsPrefix prefixes every registered metric name ("" selects
	// "fleet" — the tracer's only current host).
	MetricsPrefix string
	// Metrics, when non-nil, receives the span segment histograms and
	// the slo.* gauges.
	Metrics *metrics.Registry
}

// Tracer owns sampling, the retained-span ring, the latency metrics,
// and the SLO tracker. All methods are safe for concurrent use and
// nil-safe (a nil *Tracer is the disabled state).
type Tracer struct {
	cfg Config
	ids atomic.Uint64

	observed atomic.Uint64 // spans finished (every update with a live Ctx)
	retained atomic.Uint64 // spans kept in the ring

	mu   sync.Mutex
	ring []*SpanRecord
	head int
	n    int

	slo *sloTracker

	total    *metrics.Histogram
	pickup   *metrics.Histogram
	segments map[string]*metrics.Histogram
}

// New validates cfg, applies defaults, and wires the metrics.
func New(cfg Config) (*Tracer, error) {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 16
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	if cfg.RingCapacity == 0 {
		cfg.RingCapacity = 256
	}
	if cfg.RingCapacity < 1 {
		return nil, fmt.Errorf("otrace: ring capacity %d < 1", cfg.RingCapacity)
	}
	if cfg.MetricsPrefix == "" {
		cfg.MetricsPrefix = "fleet"
	}
	t := &Tracer{cfg: cfg, ring: make([]*SpanRecord, cfg.RingCapacity)}
	if cfg.SLO != nil {
		slo, err := newSLOTracker(*cfg.SLO)
		if err != nil {
			return nil, err
		}
		t.slo = slo
	}
	t.register(cfg.Metrics)
	return t, nil
}

// register wires the histograms and gauges (nil registry: the nil-safe
// metric types make every Observe free).
func (t *Tracer) register(reg *metrics.Registry) {
	p := t.cfg.MetricsPrefix
	t.segments = make(map[string]*metrics.Histogram, 5)
	for _, name := range []string{SegFrame, SegMailbox, SegQueue, SegCompute, SegDeliver} {
		t.segments[name] = reg.Histogram(p+".span."+name+".seconds", metrics.LatencyBounds)
	}
	t.total = reg.Histogram(p+".span.total.seconds", metrics.LatencyBounds)
	t.pickup = reg.Histogram(p+".span.pickup.seconds", metrics.LatencyBounds)
	if reg == nil {
		return
	}
	reg.RegisterFunc(p+".spans.observed", func() float64 { return float64(t.observed.Load()) })
	reg.RegisterFunc(p+".spans.retained", func() float64 { return float64(t.retained.Load()) })
	if t.slo != nil {
		t.slo.register(reg, p)
	}
}

// Enabled reports whether the tracer is live. The nil receiver is the
// disabled state.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a trace context at Now() — the in-process ingest path's
// frame boundary. Returns the zero Ctx (not traced) on a nil tracer.
func (t *Tracer) Start(clientSend int64) Ctx {
	if t == nil {
		return Ctx{}
	}
	return t.StartAt(Now(), clientSend)
}

// StartAt opens a trace context with an explicit receive timestamp —
// the network server stamps before frame decode so the frame segment
// covers the decode work.
func (t *Tracer) StartAt(recv, clientSend int64) Ctx {
	if t == nil {
		return Ctx{}
	}
	id := t.ids.Add(1)
	return Ctx{
		ID:         id,
		Sampled:    t.cfg.SampleEvery > 0 && id%uint64(t.cfg.SampleEvery) == 0,
		ClientSend: clientSend,
		Recv:       recv,
	}
}

// FinishUpdate closes the span for the packet that produced a published
// update: it decomposes the timestamp chain into segments, feeds the
// latency histograms and the SLO tracker, and — when the span is head-
// sampled, slower than the threshold, or the one that fired the SLO
// burn — retains it in the ring. The returned record is non-nil only
// when retained; mutate it only through MarkPickup/MarkStore.
func (t *Tracer) FinishUpdate(key string, seq uint64, c *Ctx, publish int64) *SpanRecord {
	if t == nil || !c.Live() {
		return nil
	}
	t.observed.Add(1)
	total := publish - c.Recv
	segs := []Segment{
		{SegFrame, c.MailboxEnq - c.Recv},
		{SegMailbox, c.QueueEnq - c.MailboxEnq},
		{SegQueue, c.QueueDeq - c.QueueEnq},
		{SegCompute, c.ComputeEnd - c.QueueDeq},
		{SegDeliver, publish - c.ComputeEnd},
	}
	for _, s := range segs {
		t.segments[s.Name].Observe(float64(s.Nanos) / 1e9)
	}
	t.total.Observe(float64(total) / 1e9)
	breach := false
	var fire *BurnReport
	if t.slo != nil {
		breach, fire = t.slo.observe(key, publish, time.Duration(total))
	}
	slow := t.cfg.SlowThreshold > 0 && time.Duration(total) >= t.cfg.SlowThreshold
	var rec *SpanRecord
	// fire != nil forces retention: the burn dump must contain the span
	// that tipped the burn rate over even when it is neither head-sampled
	// nor past the slow threshold (a tight SLO breaches long before the
	// 250ms default).
	if c.Sampled || slow || fire != nil {
		rec = &SpanRecord{
			ID:              c.ID,
			Key:             key,
			Seq:             seq,
			StartNanos:      c.Recv,
			Start:           WallTime(c.Recv).UTC().Format(time.RFC3339Nano),
			TotalNanos:      total,
			Segments:        segs,
			Stages:          c.Stages,
			ClientSendNanos: c.ClientSend,
			Slow:            slow,
			Breach:          breach,
		}
		t.retained.Add(1)
		t.mu.Lock()
		if t.n < len(t.ring) {
			t.ring[(t.head+t.n)%len(t.ring)] = rec
			t.n++
		} else {
			t.ring[t.head] = rec
			t.head = (t.head + 1) % len(t.ring)
		}
		t.mu.Unlock()
	}
	// OnBurn runs after retention so a flight dump taken from the hook
	// sees the span that tipped the burn rate over.
	if fire != nil {
		t.slo.cfg.OnBurn(*fire)
	}
	return rec
}

// MarkPickup attaches the publish→pickup dwell of the first subscriber
// to see the span's update. Later pickups of the same update are
// ignored — the first wait is the freshness that matters.
func (t *Tracer) MarkPickup(rec *SpanRecord, now int64) {
	if t == nil || rec == nil {
		return
	}
	t.mu.Lock()
	if rec.PickupNanos == 0 {
		rec.PickupNanos = now - (rec.StartNanos + rec.TotalNanos)
		t.mu.Unlock()
		t.pickup.Observe(float64(rec.PickupNanos) / 1e9)
		return
	}
	t.mu.Unlock()
}

// MarkStore attaches the trace-store append duration for the span's
// update.
func (t *Tracer) MarkStore(rec *SpanRecord, d time.Duration) {
	if t == nil || rec == nil {
		return
	}
	t.mu.Lock()
	rec.StoreNanos = d.Nanoseconds()
	t.mu.Unlock()
}

// Spans returns a deep copy of the retained ring, oldest first. Safe to
// marshal or mutate without racing the tracer.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, *t.ring[(t.head+i)%len(t.ring)])
	}
	return out
}

// Observed returns the number of spans finished (every update produced
// from a traced packet, retained or not).
func (t *Tracer) Observed() uint64 {
	if t == nil {
		return 0
	}
	return t.observed.Load()
}

// Retained returns the number of spans kept in the ring so far
// (cumulative; the ring itself holds at most RingCapacity).
func (t *Tracer) Retained() uint64 {
	if t == nil {
		return 0
	}
	return t.retained.Load()
}

// SLOReport returns the current burn-rate summary; ok is false when no
// SLO is configured.
func (t *Tracer) SLOReport() (BurnReport, bool) {
	if t == nil || t.slo == nil {
		return BurnReport{}, false
	}
	return t.slo.report(Now()), true
}

// spansPage is the /debug/spans JSON document.
type spansPage struct {
	Schema   string       `json:"schema"`
	Observed uint64       `json:"spans_observed"`
	Retained uint64       `json:"spans_retained"`
	SLO      *BurnReport  `json:"slo,omitempty"`
	Sessions []TenantSLO  `json:"sessions,omitempty"`
	Spans    []SpanRecord `json:"spans"`
}

// ServeHTTP serves the retained spans and the SLO summary as JSON —
// mount the tracer at /debug/spans.
func (t *Tracer) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	if t == nil {
		http.Error(w, "span tracing disabled", http.StatusNotFound)
		return
	}
	page := spansPage{
		Schema:   SpansSchema,
		Observed: t.observed.Load(),
		Retained: t.retained.Load(),
		Spans:    t.Spans(),
	}
	if rep, ok := t.SLOReport(); ok {
		page.SLO = &rep
		page.Sessions = t.slo.tenantTable()
	}
	// Newest-first reads better when eyeballing an incident.
	sort.SliceStable(page.Spans, func(i, j int) bool {
		return page.Spans[i].StartNanos > page.Spans[j].StartNanos
	})
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(page)
}
