package otrace

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"phasebeat/internal/metrics"
)

// finish builds a well-formed timestamp chain offset from start and
// closes the span: frame 1ms, mailbox 2ms, queue 3ms, compute 4ms,
// deliver 5ms — total 15ms.
func finish(t *testing.T, tr *Tracer, key string, seq uint64, extra time.Duration) (*SpanRecord, Ctx) {
	t.Helper()
	c := tr.Start(0)
	if !c.Live() {
		t.Fatalf("Start on a live tracer returned a dead Ctx: %+v", c)
	}
	ms := int64(time.Millisecond)
	c.MailboxEnq = c.Recv + 1*ms
	c.QueueEnq = c.MailboxEnq + 2*ms
	c.QueueDeq = c.QueueEnq + 3*ms
	c.ComputeEnd = c.QueueDeq + 4*ms
	publish := c.ComputeEnd + 5*ms + extra.Nanoseconds()
	return tr.FinishUpdate(key, seq, &c, publish), c
}

func TestSegmentsTelescopeToTotal(t *testing.T) {
	tr, err := New(Config{SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, c := finish(t, tr, "sess", 7, 0)
	if rec == nil {
		t.Fatal("SampleEvery=1 span was not retained")
	}
	want := map[string]int64{
		SegFrame:   1e6,
		SegMailbox: 2e6,
		SegQueue:   3e6,
		SegCompute: 4e6,
		SegDeliver: 5e6,
	}
	var sum int64
	for _, s := range rec.Segments {
		if s.Nanos != want[s.Name] {
			t.Errorf("segment %s = %d ns, want %d", s.Name, s.Nanos, want[s.Name])
		}
		sum += s.Nanos
	}
	if sum != rec.TotalNanos {
		t.Errorf("segments sum %d != total %d", sum, rec.TotalNanos)
	}
	if rec.TotalNanos != 15e6 {
		t.Errorf("total = %d ns, want 15ms", rec.TotalNanos)
	}
	if rec.Key != "sess" || rec.Seq != 7 || rec.StartNanos != c.Recv {
		t.Errorf("record identity wrong: %+v", rec)
	}
	if rec.Slow || rec.Breach {
		t.Errorf("fast span marked slow=%v breach=%v", rec.Slow, rec.Breach)
	}
}

func TestHeadSamplingAndSlowRetention(t *testing.T) {
	tr, err := New(Config{SampleEvery: 4, SlowThreshold: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var kept int
	for i := 0; i < 16; i++ {
		if rec, _ := finish(t, tr, "sess", uint64(i), 0); rec != nil {
			kept++
			if rec.Slow {
				t.Errorf("span %d: 15ms span marked slow", i)
			}
		}
	}
	if kept != 4 {
		t.Errorf("kept %d of 16 spans at SampleEvery=4, want 4", kept)
	}
	// A slow span is retained regardless of the sampling phase.
	rec, _ := finish(t, tr, "sess", 99, 200*time.Millisecond)
	if rec == nil || !rec.Slow {
		t.Fatalf("slow span not retained or not marked: %+v", rec)
	}
	if got := tr.Observed(); got != 17 {
		t.Errorf("Observed = %d, want 17", got)
	}
	if got := tr.Retained(); got != 5 {
		t.Errorf("Retained = %d, want 5", got)
	}
}

func TestNegativeSampleEveryDisablesHeadSampling(t *testing.T) {
	tr, err := New(Config{SampleEvery: -1, SlowThreshold: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if rec, _ := finish(t, tr, "sess", uint64(i), 0); rec != nil {
			t.Fatalf("span %d retained with head sampling disabled", i)
		}
	}
	if rec, _ := finish(t, tr, "sess", 99, time.Second); rec == nil {
		t.Fatal("slow span dropped with head sampling disabled")
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	tr, err := New(Config{SampleEvery: 1, RingCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		finish(t, tr, "sess", uint64(i), 0)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := uint64(6 + i); s.Seq != want {
			t.Errorf("span[%d].Seq = %d, want %d (oldest first)", i, s.Seq, want)
		}
	}
}

func TestMarkPickupFirstOnlyAndMarkStore(t *testing.T) {
	tr, err := New(Config{SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := finish(t, tr, "sess", 1, 0)
	end := rec.StartNanos + rec.TotalNanos
	tr.MarkPickup(rec, end+3e6)
	if rec.PickupNanos != 3e6 {
		t.Fatalf("PickupNanos = %d, want 3ms", rec.PickupNanos)
	}
	tr.MarkPickup(rec, end+9e6) // second subscriber: ignored
	if rec.PickupNanos != 3e6 {
		t.Errorf("second pickup overwrote the first: %d", rec.PickupNanos)
	}
	tr.MarkStore(rec, 2*time.Millisecond)
	if rec.StoreNanos != 2e6 {
		t.Errorf("StoreNanos = %d, want 2ms", rec.StoreNanos)
	}
}

func TestNilTracerAndDeadCtxAreInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	c := tr.Start(123)
	if c.Live() {
		t.Error("nil tracer returned a live Ctx")
	}
	if rec := tr.FinishUpdate("k", 1, &c, Now()); rec != nil {
		t.Error("nil tracer retained a span")
	}
	tr.MarkPickup(nil, Now())
	tr.MarkStore(nil, time.Second)
	if tr.Spans() != nil || tr.Observed() != 0 || tr.Retained() != 0 {
		t.Error("nil tracer reports state")
	}
	if _, ok := tr.SLOReport(); ok {
		t.Error("nil tracer reports an SLO")
	}
	var dead *Ctx
	if dead.Live() {
		t.Error("nil Ctx is live")
	}
	// A live tracer must still ignore a dead Ctx (untraced packet).
	live, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	zero := Ctx{}
	if rec := live.FinishUpdate("k", 1, &zero, Now()); rec != nil {
		t.Error("dead Ctx produced a span")
	}
	if live.Observed() != 0 {
		t.Error("dead Ctx counted as observed")
	}
}

func TestTracerMetricsRegistered(t *testing.T) {
	reg := metrics.NewRegistry()
	tr, err := New(Config{SampleEvery: 1, Metrics: reg, SLO: &SLOConfig{Target: 250 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	finish(t, tr, "sess", 1, 0)
	snap := reg.Snapshot()
	for _, name := range []string{
		"fleet.span.frame.seconds", "fleet.span.mailbox.seconds",
		"fleet.span.queue.seconds", "fleet.span.compute.seconds",
		"fleet.span.deliver.seconds", "fleet.span.total.seconds",
	} {
		h, ok := snap[name].(metrics.HistogramSnapshot)
		if !ok {
			t.Errorf("histogram %s not registered (got %T)", name, snap[name])
			continue
		}
		if h.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, h.Count)
		}
	}
	for _, name := range []string{
		"fleet.spans.observed", "fleet.spans.retained",
		"fleet.slo.burn.fast", "fleet.slo.burn.slow",
		"fleet.slo.updates", "fleet.slo.breaches",
		"fleet.slo.target_ms", "fleet.slo.objective",
	} {
		if _, ok := snap[name].(float64); !ok {
			t.Errorf("gauge %s not registered (got %T)", name, snap[name])
		}
	}
	if got := snap["fleet.spans.observed"]; got != 1.0 {
		t.Errorf("fleet.spans.observed = %v, want 1", got)
	}
	if got := snap["fleet.slo.target_ms"]; got != 250.0 {
		t.Errorf("fleet.slo.target_ms = %v, want 250", got)
	}
}

func TestSLOBurnMathAndBreachMarking(t *testing.T) {
	tr, err := New(Config{SampleEvery: 1, SLO: &SLOConfig{
		Target:    10 * time.Millisecond, // every 15ms span breaches
		Objective: 0.9,                   // budget 0.1
	}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 breaches, 4 compliant (finish total is 15ms; extra -10ms → 5ms).
	for i := 0; i < 4; i++ {
		rec, _ := finish(t, tr, "a", uint64(i), 0)
		if !rec.Breach {
			t.Errorf("15ms span %d not marked breach at 10ms target", i)
		}
	}
	for i := 0; i < 4; i++ {
		rec, _ := finish(t, tr, "b", uint64(i), -10*time.Millisecond)
		if rec.Breach {
			t.Errorf("5ms span %d marked breach at 10ms target", i)
		}
	}
	rep, ok := tr.SLOReport()
	if !ok {
		t.Fatal("SLOReport not ok with SLO configured")
	}
	if rep.Updates != 8 || rep.Breaches != 4 {
		t.Fatalf("updates/breaches = %d/%d, want 8/4", rep.Updates, rep.Breaches)
	}
	if rep.FastBad != 0.5 || rep.SlowBad != 0.5 {
		t.Errorf("bad fractions = %v/%v, want 0.5", rep.FastBad, rep.SlowBad)
	}
	// burn = badFraction / (1 - objective) = 0.5 / 0.1 = 5.
	if math.Abs(rep.FastBurn-5) > 1e-9 || math.Abs(rep.SlowBurn-5) > 1e-9 {
		t.Errorf("burn rates = %v/%v, want 5", rep.FastBurn, rep.SlowBurn)
	}
	// Worst tenant sorts first.
	rows := tr.slo.tenantTable()
	if len(rows) != 2 || rows[0].Key != "a" || rows[0].BadFrac != 1 || rows[1].BadFrac != 0 {
		t.Errorf("tenant table = %+v, want a(1.0) then b(0.0)", rows)
	}
}

func TestOnBurnFiresOncePerCooldown(t *testing.T) {
	var fired []BurnReport
	tr, err := New(Config{SampleEvery: 1, SLO: &SLOConfig{
		Target:       time.Microsecond, // everything breaches
		Objective:    0.9,
		BurnCooldown: time.Hour,
		OnBurn:       func(r BurnReport) { fired = append(fired, r) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		finish(t, tr, "sess", uint64(i), 0)
	}
	if len(fired) != 1 {
		t.Fatalf("OnBurn fired %d times under a 1h cooldown, want 1", len(fired))
	}
	if fired[0].FastBurn < 1 {
		t.Errorf("OnBurn report burn %v < threshold", fired[0].FastBurn)
	}
}

// TestBurnFireForcesRetention pins the flight-dump contract: the span
// that tips the burn rate over is retained even when head sampling and
// slow retention are both disabled, so OnBurn's dump is never empty.
func TestBurnFireForcesRetention(t *testing.T) {
	var ringAtFire []SpanRecord
	var tr *Tracer
	tr, err := New(Config{
		SampleEvery:   -1, // no head sampling
		SlowThreshold: -1, // no slow retention
		SLO: &SLOConfig{
			Target:       time.Microsecond, // everything breaches
			Objective:    0.9,
			BurnCooldown: time.Hour,
			OnBurn:       func(BurnReport) { ringAtFire = tr.Spans() },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := finish(t, tr, "sess", 1, 0)
	if rec == nil {
		t.Fatal("burn-firing span was not retained")
	}
	if !rec.Breach {
		t.Error("burn-firing span not marked as a breach")
	}
	if len(ringAtFire) != 1 || ringAtFire[0].ID != rec.ID {
		t.Fatalf("OnBurn saw ring %+v, want exactly the tipping span id %d", ringAtFire, rec.ID)
	}
	// Later breaches inside the cooldown fire nothing and so retain
	// nothing — forced retention is tied to the fire, not the breach.
	if rec2, _ := finish(t, tr, "sess", 2, 0); rec2 != nil {
		t.Error("non-firing breach was retained with sampling disabled")
	}
}

func TestTenantOverflowFolds(t *testing.T) {
	tr, err := New(Config{SampleEvery: -1, SlowThreshold: -1, SLO: &SLOConfig{
		Target:     time.Second,
		MaxTenants: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		key := string(rune('a' + i))
		finish(t, tr, key, 1, 0)
	}
	rows := tr.slo.tenantTable()
	if len(rows) != 3 {
		t.Fatalf("tenant table has %d rows with MaxTenants=2, want 3 (2 + overflow)", len(rows))
	}
	var over *TenantSLO
	for i := range rows {
		if rows[i].Key == overflowTenant {
			over = &rows[i]
		}
	}
	if over == nil || over.Updates != 4 {
		t.Fatalf("overflow row = %+v, want 4 folded updates", over)
	}
}

func TestBurnWindowAdvanceZeroesStaleBuckets(t *testing.T) {
	w := newBurnWindow(15 * time.Second) // 1s buckets
	now := int64(1e15)
	w.observe(now, true)
	w.observe(now, true)
	if got := w.badFraction(now); got != 1 {
		t.Fatalf("bad fraction = %v, want 1", got)
	}
	// Half a window later the observations are still in.
	if got := w.badFraction(now + 7e9); got != 1 {
		t.Errorf("bad fraction after 7s = %v, want 1", got)
	}
	// Two windows later everything has aged out.
	if got := w.badFraction(now + 31e9); got != 0 {
		t.Errorf("bad fraction after 31s = %v, want 0", got)
	}
}

func TestServeHTTPPage(t *testing.T) {
	tr, err := New(Config{SampleEvery: 1, SLO: &SLOConfig{Target: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	finish(t, tr, "sess", 1, 0)
	finish(t, tr, "sess", 2, 0)
	rr := httptest.NewRecorder()
	tr.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/spans", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var page struct {
		Schema   string       `json:"schema"`
		Observed uint64       `json:"spans_observed"`
		SLO      *BurnReport  `json:"slo"`
		Spans    []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if page.Schema != SpansSchema || page.Observed != 2 || page.SLO == nil {
		t.Errorf("page = schema %q observed %d slo %v", page.Schema, page.Observed, page.SLO)
	}
	if len(page.Spans) != 2 || page.Spans[0].Seq != 2 {
		t.Errorf("spans not newest-first: %+v", page.Spans)
	}
	// Nil tracer 404s rather than panicking.
	rr = httptest.NewRecorder()
	(*Tracer)(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/spans", nil))
	if rr.Code != 404 {
		t.Errorf("nil tracer status %d, want 404", rr.Code)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{RingCapacity: -1}); err == nil {
		t.Error("negative ring capacity accepted")
	}
	if _, err := New(Config{SLO: &SLOConfig{}}); err == nil {
		t.Error("zero SLO target accepted")
	}
	if _, err := New(Config{SLO: &SLOConfig{Target: time.Second, Objective: 1.5}}); err == nil {
		t.Error("objective outside (0,1) accepted")
	}
}

func TestNowIsMonotoneAndWallAnchored(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Fatalf("Now went backwards: %d then %d", a, b)
	}
	if d := time.Since(WallTime(a)); d < 0 || d > time.Minute {
		t.Errorf("Now drifted %v from wall clock", d)
	}
}
