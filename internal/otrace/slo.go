package otrace

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"phasebeat/internal/metrics"
)

// SLOConfig defines a latency service-level objective over the
// ingest→update spans: "Objective of updates publish within Target".
// The tracker reports compliance as burn rates — the ratio of the
// observed bad fraction to the budgeted bad fraction (1 − Objective) —
// over a fast and a slow window, the standard multi-window form: a burn
// rate of 1.0 spends the error budget exactly as fast as the objective
// allows, 10 means the budget is burning ten times too fast.
type SLOConfig struct {
	// Target is the latency objective (required, > 0). An update whose
	// ingest→publish total exceeds Target is a breach.
	Target time.Duration
	// Objective is the fraction of updates that must meet Target.
	// 0 selects 0.999; otherwise must sit in (0, 1).
	Objective float64
	// FastWindow is the paging window. 0 selects 5 minutes.
	FastWindow time.Duration
	// SlowWindow is the trend window. 0 selects 1 hour.
	SlowWindow time.Duration
	// BurnThreshold fires OnBurn when both windows' burn rates reach it.
	// 0 selects 1.0.
	BurnThreshold float64
	// BurnCooldown is the minimum gap between OnBurn firings. 0 selects
	// 5 minutes.
	BurnCooldown time.Duration
	// MaxTenants caps the per-session compliance table; sessions beyond
	// the cap are folded into one overflow row. 0 selects 4096.
	MaxTenants int
	// OnBurn, when non-nil, is called from the observing goroutine when
	// both burn rates cross BurnThreshold, at most once per BurnCooldown.
	// It runs outside the tracker lock, after the triggering span has
	// been retained — calling back into the Tracer (Spans, SLOReport) is
	// safe.
	OnBurn func(BurnReport)
}

// BurnReport is a point-in-time SLO summary: the /debug/spans "slo"
// object and the payload handed to OnBurn.
type BurnReport struct {
	TargetMS      float64 `json:"target_ms"`
	Objective     float64 `json:"objective"`
	FastWindowSec float64 `json:"fast_window_seconds"`
	SlowWindowSec float64 `json:"slow_window_seconds"`
	// FastBurn and SlowBurn are the windows' burn rates; FastBad and
	// SlowBad the raw bad fractions behind them.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	FastBad  float64 `json:"fast_bad_fraction"`
	SlowBad  float64 `json:"slow_bad_fraction"`
	// Updates and Breaches count all observations since start.
	Updates  uint64 `json:"updates"`
	Breaches uint64 `json:"breaches"`
}

// TenantSLO is one session's lifetime compliance row.
type TenantSLO struct {
	Key      string  `json:"key"`
	Updates  uint64  `json:"updates"`
	Breaches uint64  `json:"breaches"`
	BadFrac  float64 `json:"bad_fraction"`
}

// burnBuckets is the ring resolution of each burn window. 15 buckets
// keeps the window edge error under ~7% of the window, plenty for a
// gauge whose alerting threshold is a factor, not a percentage.
const burnBuckets = 15

// burnWindow is a bucketed sliding window of good/bad counts. Buckets
// are addressed by absolute index (timestamp / bucketDur) so advancing
// across idle gaps zeroes exactly the stale buckets. Not self-locking —
// the sloTracker's mutex guards it.
type burnWindow struct {
	bucketDur int64 // nanos per bucket
	lastIdx   int64 // absolute index of the newest bucket
	bad       [burnBuckets]uint64
	total     [burnBuckets]uint64
}

func newBurnWindow(window time.Duration) *burnWindow {
	return &burnWindow{bucketDur: window.Nanoseconds() / burnBuckets}
}

// advance rotates the ring forward to the bucket containing now,
// zeroing any buckets skipped over.
func (w *burnWindow) advance(now int64) {
	idx := now / w.bucketDur
	if w.lastIdx == 0 {
		w.lastIdx = idx
		return
	}
	for ; w.lastIdx < idx; w.lastIdx++ {
		slot := (w.lastIdx + 1) % burnBuckets
		w.bad[slot] = 0
		w.total[slot] = 0
	}
}

func (w *burnWindow) observe(now int64, breach bool) {
	w.advance(now)
	slot := w.lastIdx % burnBuckets
	w.total[slot]++
	if breach {
		w.bad[slot]++
	}
}

// badFraction returns the window's bad/total ratio (0 when empty).
func (w *burnWindow) badFraction(now int64) float64 {
	w.advance(now)
	var bad, total uint64
	for i := range w.total {
		bad += w.bad[i]
		total += w.total[i]
	}
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total)
}

// overflowTenant aggregates sessions past the MaxTenants cap.
const overflowTenant = "~overflow"

// sloTracker owns the burn windows, the per-tenant compliance table and
// the OnBurn cooldown. One mutex serializes everything: the observe
// path runs once per published update (stride cadence, not packet
// cadence), so contention is negligible.
type sloTracker struct {
	cfg SLOConfig

	mu       sync.Mutex
	fast     *burnWindow
	slow     *burnWindow
	updates  uint64
	breaches uint64
	tenants  map[string]*tenantCounts
	lastBurn int64
}

type tenantCounts struct {
	updates  uint64
	breaches uint64
}

func newSLOTracker(cfg SLOConfig) (*sloTracker, error) {
	if cfg.Target <= 0 {
		return nil, fmt.Errorf("otrace: SLO target %v must be positive", cfg.Target)
	}
	if cfg.Objective == 0 {
		cfg.Objective = 0.999
	}
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		return nil, fmt.Errorf("otrace: SLO objective %v must sit in (0, 1)", cfg.Objective)
	}
	if cfg.FastWindow == 0 {
		cfg.FastWindow = 5 * time.Minute
	}
	if cfg.SlowWindow == 0 {
		cfg.SlowWindow = time.Hour
	}
	if cfg.FastWindow < burnBuckets*time.Nanosecond || cfg.SlowWindow < burnBuckets*time.Nanosecond {
		return nil, fmt.Errorf("otrace: SLO windows %v/%v too small", cfg.FastWindow, cfg.SlowWindow)
	}
	if cfg.BurnThreshold == 0 {
		cfg.BurnThreshold = 1.0
	}
	if cfg.BurnCooldown == 0 {
		cfg.BurnCooldown = 5 * time.Minute
	}
	if cfg.MaxTenants == 0 {
		cfg.MaxTenants = 4096
	}
	return &sloTracker{
		cfg:     cfg,
		fast:    newBurnWindow(cfg.FastWindow),
		slow:    newBurnWindow(cfg.SlowWindow),
		tenants: make(map[string]*tenantCounts),
	}, nil
}

// observe records one published update's total latency and returns
// whether it breached the target, plus a non-nil report when OnBurn
// should fire (both windows past the threshold, cooldown lapsed). The
// caller invokes OnBurn outside the lock, after retaining the span.
func (s *sloTracker) observe(key string, now int64, total time.Duration) (bool, *BurnReport) {
	breach := total > s.cfg.Target
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updates++
	if breach {
		s.breaches++
	}
	s.fast.observe(now, breach)
	s.slow.observe(now, breach)
	tc := s.tenants[key]
	if tc == nil {
		if len(s.tenants) >= s.cfg.MaxTenants {
			key = overflowTenant
			if tc = s.tenants[key]; tc == nil {
				tc = &tenantCounts{}
				s.tenants[key] = tc
			}
		} else {
			tc = &tenantCounts{}
			s.tenants[key] = tc
		}
	}
	tc.updates++
	if breach {
		tc.breaches++
	}
	if s.cfg.OnBurn != nil && breach {
		rep := s.reportLocked(now)
		if rep.FastBurn >= s.cfg.BurnThreshold && rep.SlowBurn >= s.cfg.BurnThreshold &&
			(s.lastBurn == 0 || now-s.lastBurn >= s.cfg.BurnCooldown.Nanoseconds()) {
			s.lastBurn = now
			return breach, &rep
		}
	}
	return breach, nil
}

func (s *sloTracker) reportLocked(now int64) BurnReport {
	budget := 1 - s.cfg.Objective
	fastBad := s.fast.badFraction(now)
	slowBad := s.slow.badFraction(now)
	return BurnReport{
		TargetMS:      float64(s.cfg.Target) / float64(time.Millisecond),
		Objective:     s.cfg.Objective,
		FastWindowSec: s.cfg.FastWindow.Seconds(),
		SlowWindowSec: s.cfg.SlowWindow.Seconds(),
		FastBurn:      fastBad / budget,
		SlowBurn:      slowBad / budget,
		FastBad:       fastBad,
		SlowBad:       slowBad,
		Updates:       s.updates,
		Breaches:      s.breaches,
	}
}

func (s *sloTracker) report(now int64) BurnReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reportLocked(now)
}

// tenantTable returns the per-session compliance rows, worst bad
// fraction first (ties broken by key for stable output).
func (s *sloTracker) tenantTable() []TenantSLO {
	s.mu.Lock()
	out := make([]TenantSLO, 0, len(s.tenants))
	for key, tc := range s.tenants {
		row := TenantSLO{Key: key, Updates: tc.updates, Breaches: tc.breaches}
		if tc.updates > 0 {
			row.BadFrac = float64(tc.breaches) / float64(tc.updates)
		}
		out = append(out, row)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].BadFrac != out[j].BadFrac {
			return out[i].BadFrac > out[j].BadFrac
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// register wires the slo.* gauges: burn rates are computed at snapshot
// time from the windows, so the gauges are always current.
func (s *sloTracker) register(reg *metrics.Registry, prefix string) {
	reg.RegisterFunc(prefix+".slo.burn.fast", func() float64 { return s.report(Now()).FastBurn })
	reg.RegisterFunc(prefix+".slo.burn.slow", func() float64 { return s.report(Now()).SlowBurn })
	reg.RegisterFunc(prefix+".slo.updates", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.updates)
	})
	reg.RegisterFunc(prefix+".slo.breaches", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.breaches)
	})
	reg.Gauge(prefix + ".slo.target_ms").Set(float64(s.cfg.Target) / float64(time.Millisecond))
	reg.Gauge(prefix + ".slo.objective").Set(s.cfg.Objective)
}
