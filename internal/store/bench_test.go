package store

import (
	"fmt"
	"math"
	"testing"

	"phasebeat/internal/trace"
)

// BenchmarkStoreAppend measures the per-packet append path — tail-log
// write, tier accumulation, and the amortized seal — at the daemon
// shape (3×30 CSI).
func BenchmarkStoreAppend(b *testing.B) {
	s, err := Open(Config{Dir: b.TempDir(), BlockSeconds: 60})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	meta := Meta{SampleRate: 400, NumAntennas: 3, NumSubcarriers: 30}
	if err := s.OpenSession("bench", meta); err != nil {
		b.Fatal(err)
	}
	pkts := make([]trace.Packet, 256)
	for i := range pkts {
		pkts[i] = mkPacket(0, 3, 30, math.Sin(float64(i)*0.1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		p.Time = float64(i) / meta.SampleRate
		if err := s.AppendPacket("bench", p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRangeQuery measures a full-span tier query against a
// store holding an hour of 25 Hz data — the query path the HTTP API
// serves, which must touch no block files.
func BenchmarkStoreRangeQuery(b *testing.B) {
	s, err := Open(Config{Dir: b.TempDir(), BlockSeconds: 60})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	meta := Meta{SampleRate: 25, NumAntennas: 2, NumSubcarriers: 4}
	if err := s.OpenSession("bench", meta); err != nil {
		b.Fatal(err)
	}
	// An hour of samples fed through the tier accumulator directly
	// (going through AppendPacket would spend the benchmark's setup
	// sealing 60 blocks of raw CSI).
	ss, err := s.session("bench")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3600*25; i++ {
		t := float64(i) / 25
		ss.tiers.add(seriesWave, t, math.Sin(t))
	}
	ss.haveT, ss.lastT = true, 3600
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Range("bench", 0, 0, "60s")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Wave) == 0 || res.BlocksRead != 0 {
			b.Fatal(fmt.Sprintf("bad result: %d bins, %d blocks read", len(res.Wave), res.BlocksRead))
		}
	}
}
