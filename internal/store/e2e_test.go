package store_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"phasebeat/internal/core"
	"phasebeat/internal/csisim"
	"phasebeat/internal/fleet"
	"phasebeat/internal/metrics"
	"phasebeat/internal/store"
	"phasebeat/internal/trace"
)

// recorder adapts the store to fleet.Recorder the same way phasebeatd
// does. It lives in the external test package: fleet deliberately does
// not import store, so the adapter is the integration seam under test.
type recorder struct{ st *store.Store }

func (r recorder) OpenSession(key string, sc fleet.SessionConfig) error {
	return r.st.OpenSession(key, store.Meta{
		SampleRate:     sc.SampleRate,
		NumAntennas:    sc.NumAntennas,
		NumSubcarriers: sc.NumSubcarriers,
		WindowSeconds:  sc.WindowSeconds,
		StrideSeconds:  sc.UpdateEverySeconds,
		Persons:        sc.Persons,
	})
}

func (r recorder) AppendPacket(key string, p trace.Packet) error {
	return r.st.AppendPacket(key, p)
}

func (r recorder) AppendUpdate(key string, u core.Update) error {
	return r.st.AppendUpdate(key, u)
}

func (r recorder) CloseSession(key string) error { return r.st.CloseSession(key) }

// TestHourSessionEndToEnd is the acceptance test for the tiered store:
// an hour-long simulated session recorded through the fleet tee must
//
//   - answer a full-range tier query from the downsample index alone
//     (zero sealed blocks decoded, counted by store.tier.hits),
//   - survive an abrupt kill (store and fleet abandoned, never closed)
//     with at most the unsealed tail lost — and, because the tail log
//     flushes per append, in practice with nothing lost, and
//   - replay through a fresh Monitor to the same final breathing
//     estimate the live daemon recorded, within 0.1 bpm.
func TestHourSessionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("hour-scale end-to-end run")
	}
	const (
		key  = "e2e"
		rate = 25.0
		subs = 8
	)
	seconds := 3600
	if raceEnabled {
		// Race instrumentation multiplies the stride cost ~15×; ten
		// minutes exercises the same seal/tier/recovery cadence.
		seconds = 600
	}
	n := int(rate) * seconds
	dir := filepath.Join(t.TempDir(), "store")
	reg := metrics.NewRegistry()
	st, err := store.Open(store.Config{Dir: dir, BlockSeconds: 60, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	mgr, err := fleet.New(fleet.Config{
		Shards: 1,
		// Hold the whole feed so the drop-on-backlog monitor never sheds:
		// a lossless live run is what makes live-vs-replay comparable.
		SessionBuffer: n + 64,
		Monitor: core.MonitorConfig{
			Pipeline:           core.ConfigForRate(rate),
			Persons:            1,
			SampleRate:         rate,
			NumAntennas:        3,
			NumSubcarriers:     subs,
			WindowSeconds:      8,
			UpdateEverySeconds: 2,
		},
		Recorder: recorder{st},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cleanup (not part of the scenario): the abandoned manager and
	// store are released only after every assertion has run.
	defer st.Close()
	defer mgr.Close()

	if _, err := mgr.Open(key, fleet.SessionConfig{}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	env := csisim.Environment{
		CarrierHz:       csisim.DefaultCarrierHz,
		AntennaSpacingM: csisim.DefaultAntennaSpacingM,
		StaticPaths:     csisim.RandomStaticPaths(rng, 6, 3),
		TxRxDistanceM:   3,
	}
	pathDist := 4 + rng.Float64()*2
	person := csisim.RandomPerson(rng, pathDist, csisim.ReflectionGainForPath(pathDist, false))
	sim, err := csisim.New(csisim.Config{
		Env:         env,
		Persons:     []csisim.Person{person},
		SampleRate:  rate,
		NumAntennas: 3,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastT float64
	for i := 0; i < n; i++ {
		p := sim.NextPacket()
		rows := make([][]complex128, len(p.CSI))
		for a, row := range p.CSI {
			rows[a] = row[:subs:subs]
		}
		lastT = p.Time
		if err := mgr.Ingest(key, trace.Packet{Time: p.Time, CSI: rows}); err != nil {
			t.Fatalf("ingest packet %d: %v", i, err)
		}
	}

	deadline := time.Now().Add(3 * time.Minute)
	for mgr.Health().Accepted < uint64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("monitor stalled: %+v", mgr.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d := mgr.Health().PacketsDropped; d != 0 {
		t.Fatalf("live session dropped %d packets despite full-feed buffer", d)
	}
	// The recorder sees updates on the session's drain goroutine; wait
	// until the final stride's estimate has landed in the tiers before
	// pulling the plug.
	for {
		res, err := st.Range(key, 0, math.Inf(1), "1s")
		if err == nil && len(res.Breathing) > 0 &&
			res.Breathing[len(res.Breathing)-1].Start >= float64(seconds)-4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("final live update never recorded (err=%v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	liveBPM, ok := st.LastBPM(key)
	if !ok {
		t.Fatal("no live breathing estimate recorded")
	}

	// KILL: reopen the directory in a second store without closing the
	// first — nothing was sealed or flushed on the way down beyond what
	// every append already persisted.
	reg2 := metrics.NewRegistry()
	st2, err := store.Open(store.Config{Dir: dir, ReadOnly: true, Metrics: reg2})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer st2.Close()
	infos := st2.Sessions()
	if len(infos) != 1 || infos[0].Key != key {
		t.Fatalf("recovered sessions = %+v, want one %q", infos, key)
	}
	if got := infos[0].To; got != lastT {
		t.Fatalf("recovered span ends at %v, want %v (tail flushes per append)", got, lastT)
	}

	res, err := st2.Range(key, 0, math.Inf(1), "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != "60s" {
		t.Fatalf("full-range query picked tier %q, want 60s", res.Tier)
	}
	if res.BlocksRead != 0 {
		t.Fatalf("tier query decoded %d sealed blocks, want 0", res.BlocksRead)
	}
	if len(res.Wave) != seconds/60 {
		t.Fatalf("got %d 60s wave bins, want %d", len(res.Wave), seconds/60)
	}
	var pkts int
	for _, b := range res.Wave {
		pkts += int(b.Count)
	}
	if pkts != n {
		t.Fatalf("wave bins cover %d packets, want %d", pkts, n)
	}
	if len(res.Breathing) == 0 {
		t.Fatal("tier query returned no breathing history")
	}
	if hits := reg2.Counter("store.tier.hits.60s").Value(); hits != 1 {
		t.Fatalf("store.tier.hits.60s = %d, want 1", hits)
	}

	base := core.DefaultMonitorConfig()
	last, err := st2.ReplayThroughMonitor(key, base)
	if err != nil {
		t.Fatal(err)
	}
	if last.Result.Breathing == nil {
		t.Fatalf("replay's final update carries no breathing estimate: %+v", last)
	}
	if delta := math.Abs(last.Result.Breathing.RateBPM - liveBPM); delta > 0.1 {
		t.Fatalf("replay breathing %.3f bpm vs live %.3f bpm: |delta| %.3f > 0.1",
			last.Result.Breathing.RateBPM, liveBPM, delta)
	}
}
