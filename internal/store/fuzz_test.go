package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"phasebeat/internal/trace"
)

// FuzzStoreBlockRead throws arbitrary bytes at every decoder the store
// runs against on-disk state during recovery and queries: the tier
// index, the crash tail, and the sealed-block trace reader. None may
// panic or over-allocate; valid inputs must round-trip.
func FuzzStoreBlockRead(f *testing.F) {
	// Seed with one valid artifact of each kind.
	ts := newTierSet([]float64{1, 10})
	for i := 0; i < 50; i++ {
		ts.add(seriesWave, float64(i)*0.1, float64(i%7))
	}
	ts.add(seriesBreath, 2, 15)
	var tiersBuf bytes.Buffer
	if err := writeTiers(&tiersBuf, ts); err != nil {
		f.Fatal(err)
	}
	f.Add(tiersBuf.Bytes())

	dir := f.TempDir()
	tailPath := filepath.Join(dir, "tail")
	tw, err := newTailWriter(tailPath, 25, 2, 3)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tw.append(mkPacket(float64(i), 2, 3, float64(i))); err != nil {
			f.Fatal(err)
		}
	}
	if err := tw.close(); err != nil {
		f.Fatal(err)
	}
	tailBytes, err := os.ReadFile(tailPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tailBytes)

	tr := &trace.Trace{SampleRate: 25, NumAntennas: 2, NumSubcarriers: 3,
		Packets: []trace.Packet{mkPacket(0, 2, 3, 1), mkPacket(0.04, 2, 3, 2)}}
	var blockBuf bytes.Buffer
	if err := trace.WriteCompressed(&blockBuf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(blockBuf.Bytes())

	f.Add([]byte("PBTI"))
	f.Add([]byte("PBTL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if got, err := readTiers(bytes.NewReader(data)); err == nil {
			// Accepted tier indexes must re-encode cleanly.
			var out bytes.Buffer
			if werr := writeTiers(&out, got); werr != nil {
				t.Fatalf("accepted tiers failed to re-encode: %v", werr)
			}
		}
		if _, pkts, _, err := readTail(bytes.NewReader(data)); err == nil {
			// Every recovered packet must carry the header's shape —
			// recovery feeds these straight into the tier accumulator.
			for _, p := range pkts {
				if len(p.CSI) == 0 || len(p.CSI[0]) == 0 {
					t.Fatal("recovered tail packet with empty shape")
				}
			}
		}
		if tr, err := trace.ReadCompressed(bytes.NewReader(data)); err == nil {
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("block reader accepted an invalid trace: %v", verr)
			}
		}
	})
}
