package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// RegisterHTTP mounts the store's query API on mux, next to wherever the
// caller serves /debug/metrics:
//
//	GET /store/sessions                                  session listing
//	GET /store/range?session=K&from=F&to=T&tier=L        range query
//
// from/to are trace-time seconds (to empty or 0 = through newest); tier
// is a tier label ("1s", "10s", "60s"), "raw", or empty for the cheapest
// tier covering the span.
func (s *Store) RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("/store/sessions", s.handleSessions)
	mux.HandleFunc("/store/range", s.handleRange)
}

func (s *Store) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeHTTPJSON(w, struct {
		Sessions []SessionInfo `json:"sessions"`
		Tiers    []string      `json:"tiers"`
	}{s.Sessions(), s.tierLabels()})
}

func (s *Store) handleRange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	key := q.Get("session")
	if key == "" {
		http.Error(w, "missing session parameter", http.StatusBadRequest)
		return
	}
	from, err := parseTimeParam(q.Get("from"), 0)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad from: %v", err), http.StatusBadRequest)
		return
	}
	to, err := parseTimeParam(q.Get("to"), 0)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad to: %v", err), http.StatusBadRequest)
		return
	}
	res, err := s.Range(key, from, to, q.Get("tier"))
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownSession):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case errors.Is(err, ErrUnknownTier), errors.Is(err, ErrBadRange):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeHTTPJSON(w, res)
}

func parseTimeParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

func writeHTTPJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding errors past the header are undeliverable; the truncated
	// body is the signal.
	_ = enc.Encode(v)
}
