package store

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"phasebeat/internal/core"
	"phasebeat/internal/trace"
)

// RawTier is the tier name selecting undecimated packet samples in a
// range query. Raw is never auto-picked: reading sealed blocks is the
// expensive path and must be asked for by name.
const RawTier = "raw"

// SessionInfo summarizes one stored session for the /store/sessions
// listing.
type SessionInfo struct {
	Key     string  `json:"key"`
	Meta    Meta    `json:"meta"`
	Blocks  int     `json:"blocks"`
	Bytes   int64   `json:"bytes"`
	Packets int     `json:"packets"` // packets in the unsealed tail buffer
	From    float64 `json:"from"`    // oldest retained trace time
	To      float64 `json:"to"`      // newest trace time
	LastBPM float64 `json:"last_bpm,omitempty"`
	Open    bool    `json:"open"` // accepting appends
}

// Sample is one raw-tier waveform sample.
type Sample struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// RangeResult is the answer to a range query: either downsample bins
// (tier queries) or raw samples (tier "raw").
type RangeResult struct {
	Session string  `json:"session"`
	From    float64 `json:"from"`
	To      float64 `json:"to"`
	// Tier is the resolution that answered the query ("60s", "raw", ...) —
	// for auto-picked queries, the cheapest tier covering the span.
	Tier      string    `json:"tier"`
	Wave      []TierBin `json:"wave,omitempty"`
	Breathing []TierBin `json:"breathing,omitempty"`
	Heart     []TierBin `json:"heart,omitempty"`
	Samples   []Sample  `json:"samples,omitempty"`
	// BlocksRead counts sealed block files decoded to answer the query —
	// zero for every tier query, the point of the tier index.
	BlocksRead int `json:"blocks_read"`
}

// Sessions lists the stored sessions sorted by key.
func (s *Store) Sessions() []SessionInfo {
	s.mu.Lock()
	sess := make([]*sessionStore, 0, len(s.sessions))
	for _, ss := range s.sessions {
		sess = append(sess, ss)
	}
	s.mu.Unlock()
	out := make([]SessionInfo, 0, len(sess))
	for _, ss := range sess {
		ss.mu.Lock()
		info := SessionInfo{
			Key:     ss.key,
			Meta:    ss.meta,
			Blocks:  len(ss.blocks),
			Packets: len(ss.buf),
			Open:    !ss.sealed,
		}
		for _, bi := range ss.blocks {
			info.Bytes += bi.bytes
		}
		info.From, info.To = ss.spanLocked()
		if bpm, ok := ss.tiers.lastBreath(); ok {
			info.LastBPM = bpm
		}
		ss.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// spanLocked returns the retained trace-time extent. Caller holds ss.mu.
func (ss *sessionStore) spanLocked() (from, to float64) {
	switch {
	case len(ss.blocks) > 0:
		from = ss.blocks[0].t0
		to = ss.blocks[len(ss.blocks)-1].t1
	case len(ss.buf) > 0:
		from = ss.buf[0].Time
	}
	if n := len(ss.buf); n > 0 {
		to = ss.buf[n-1].Time
	}
	return from, to
}

// Meta returns a session's stream metadata.
func (s *Store) Meta(key string) (Meta, error) {
	ss, err := s.session(key)
	if err != nil {
		return Meta{}, err
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.meta, nil
}

// LastBPM returns the most recent breathing estimate recorded for the
// session.
func (s *Store) LastBPM(key string) (float64, bool) {
	ss, err := s.session(key)
	if err != nil {
		return 0, false
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.tiers.lastBreath()
}

// pickTier chooses the cheapest (coarsest) tier that still resolves the
// span: the coarsest duration fitting at least four bins into [from, to),
// falling back to the finest tier for short spans. Raw is never picked
// automatically.
func (s *Store) pickTier(from, to float64) int {
	span := to - from
	best := 0
	for i, d := range s.cfg.TierSeconds {
		if d*4 <= span {
			best = i
		}
	}
	return best
}

// tierIndex resolves a tier label ("10s") to its index.
func (s *Store) tierIndex(label string) (int, error) {
	for i, d := range s.cfg.TierSeconds {
		if TierLabel(d) == label {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q (have %v, %q)", ErrUnknownTier, label, s.tierLabels(), RawTier)
}

func (s *Store) tierLabels() []string {
	out := make([]string, len(s.cfg.TierSeconds))
	for i, d := range s.cfg.TierSeconds {
		out[i] = TierLabel(d)
	}
	return out
}

// Range answers a range query over [from, to). An empty tier auto-picks
// the cheapest tier resolving the span; tier "raw" decodes sealed blocks
// (and the live tail) into per-packet samples. A to of zero or +Inf means
// "through the newest data".
func (s *Store) Range(key string, from, to float64, tier string) (*RangeResult, error) {
	ss, err := s.session(key)
	if err != nil {
		return nil, err
	}
	ss.mu.Lock()
	if to == 0 || math.IsInf(to, 1) {
		_, newest := ss.spanLocked()
		// Half-open interval: nudge past the newest sample so it is
		// included.
		to = math.Nextafter(newest, math.Inf(1))
	}
	if !(from < to) {
		ss.mu.Unlock()
		return nil, fmt.Errorf("%w: empty range [%v, %v)", ErrBadRange, from, to)
	}
	res := &RangeResult{Session: key, From: from, To: to}
	if tier == RawTier {
		blocks := make([]blockInfo, len(ss.blocks))
		copy(blocks, ss.blocks)
		samples := rawSamples(ss.buf, from, to)
		ss.mu.Unlock()
		return s.rangeRaw(res, blocks, samples)
	}
	defer ss.mu.Unlock()
	idx := -1
	if tier == "" {
		idx = s.pickTier(from, to)
	} else if idx, err = s.tierIndex(tier); err != nil {
		return nil, err
	}
	dur := s.cfg.TierSeconds[idx]
	res.Tier = TierLabel(dur)
	res.Wave = ss.tiers.series[idx][seriesWave].query(dur, from, to)
	res.Breathing = ss.tiers.series[idx][seriesBreath].query(dur, from, to)
	res.Heart = ss.tiers.series[idx][seriesHeart].query(dur, from, to)
	s.tierHits[idx].Inc()
	return res, nil
}

// rangeRaw decodes the sealed blocks overlapping the range. Runs without
// the session lock: blocks are immutable and eviction losing the race
// just surfaces as a shorter answer, the same outcome as querying a
// moment later.
func (s *Store) rangeRaw(res *RangeResult, blocks []blockInfo, tailSamples []Sample) (*RangeResult, error) {
	res.Tier = RawTier
	for _, bi := range blocks {
		if bi.t1 < res.From || bi.t0 >= res.To {
			continue
		}
		tr, err := readBlock(bi.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // evicted mid-query
			}
			s.blockCorrupt.Inc()
			return nil, fmt.Errorf("store: block %s: %w", bi.path, err)
		}
		res.BlocksRead++
		s.blocksRead.Inc()
		res.Samples = append(res.Samples, rawSamples(tr.Packets, res.From, res.To)...)
	}
	res.Samples = append(res.Samples, tailSamples...)
	s.rawHits.Inc()
	return res, nil
}

// rawSamples reduces the packets inside [from, to) to waveform samples.
func rawSamples(pkts []trace.Packet, from, to float64) []Sample {
	var out []Sample
	for _, p := range pkts {
		if p.Time < from || p.Time >= to {
			continue
		}
		out = append(out, Sample{T: p.Time, V: waveSample(p)})
	}
	return out
}

// Replay streams every retained packet of a session — sealed blocks in
// seal order, then the unsealed tail — through fn in time order. fn
// returning an error stops the replay.
func (s *Store) Replay(key string, fn func(trace.Packet) error) error {
	ss, err := s.session(key)
	if err != nil {
		return err
	}
	ss.mu.Lock()
	blocks := make([]blockInfo, len(ss.blocks))
	copy(blocks, ss.blocks)
	tail := make([]trace.Packet, len(ss.buf))
	copy(tail, ss.buf)
	ss.mu.Unlock()
	for _, bi := range blocks {
		tr, err := readBlock(bi.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // evicted mid-replay; the stream just starts later
			}
			s.blockCorrupt.Inc()
			return fmt.Errorf("store: block %s: %w", bi.path, err)
		}
		s.blocksRead.Inc()
		for _, p := range tr.Packets {
			if err := fn(p); err != nil {
				return err
			}
		}
	}
	for _, p := range tail {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// ReplayThroughMonitor replays a stored session through a fresh Monitor
// built from base overridden by the stored metadata — the same override
// rules the fleet applies when it opens a live session, so a postmortem
// replay reproduces the daemon's estimates. Ingest is lossless (blocking,
// no drop-on-backlog) regardless of base. Returns the final update
// carrying a Result, or an error if the session produced none.
func (s *Store) ReplayThroughMonitor(key string, base core.MonitorConfig) (*core.Update, error) {
	meta, err := s.Meta(key)
	if err != nil {
		return nil, err
	}
	mc := base
	if meta.SampleRate > 0 {
		mc.SampleRate = meta.SampleRate
		mc.Pipeline = core.ConfigForRate(meta.SampleRate)
	}
	if meta.NumAntennas > 0 {
		mc.NumAntennas = meta.NumAntennas
	}
	if meta.NumSubcarriers > 0 {
		mc.NumSubcarriers = meta.NumSubcarriers
	}
	if meta.WindowSeconds > 0 {
		mc.WindowSeconds = meta.WindowSeconds
	}
	if meta.StrideSeconds > 0 {
		mc.UpdateEverySeconds = meta.StrideSeconds
	}
	if meta.Persons > 0 {
		mc.Persons = meta.Persons
	}
	mc.DropOnBacklog = false
	if mc.IngestBuffer < 64 {
		mc.IngestBuffer = 64
	}
	mon, err := core.NewMonitor(mc)
	if err != nil {
		return nil, fmt.Errorf("store: replay %q: %w", key, err)
	}
	var last, lastAny *core.Update
	done := make(chan struct{})
	go func() {
		defer close(done)
		for u := range mon.Updates() {
			if u.Result == nil {
				continue
			}
			v := u
			lastAny = &v
			// The caller wants the stream's final vital-sign estimate; a
			// trailing errored window (motion, short tail) must not
			// shadow it.
			if u.Result.Breathing != nil || u.Result.Heart != nil || u.Result.MultiPerson != nil {
				last = &v
			}
		}
	}()
	rerr := s.Replay(key, func(p trace.Packet) error {
		mon.Ingest(p)
		return nil
	})
	// Close would abandon packets still queued in the ingest buffer,
	// silently dropping the last ~IngestBuffer/rate seconds of the
	// session — and with it the final strides the live daemon emitted.
	// Drain processes the backlog before stopping.
	mon.Drain()
	<-done
	if rerr != nil {
		return nil, rerr
	}
	if last == nil {
		last = lastAny
	}
	if last == nil {
		return nil, fmt.Errorf("store: replay %q produced no estimates (session shorter than one window?)", key)
	}
	return last, nil
}

// jsonMarshal indents persisted JSON so meta.json stays hand-readable.
func jsonMarshal(v any) ([]byte, error) { return json.MarshalIndent(v, "", "  ") }

// readJSON decodes path into v.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
