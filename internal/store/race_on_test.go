//go:build race

package store_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
