package store

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"phasebeat/internal/metrics"
)

// TestRetentionByteBudget fills the store past the byte budget with
// concurrent writers and verifies oldest-block eviction order plus
// tier-index consistency after eviction.
func TestRetentionByteBudget(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, err := Open(Config{
		Dir: dir, BlockSeconds: 1, MaxBytes: 20 << 10,
		TierSeconds: []float64{1}, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers = 4
	keys := make([]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		keys[w] = fmt.Sprintf("sess-%d", w)
		if err := s.OpenSession(keys[w], testMeta); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(key string, seed float64) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				tm := float64(i) / testMeta.SampleRate
				if err := s.AppendPacket(key, mkPacket(tm, 2, 4, math.Sin(tm+seed))); err != nil {
					t.Errorf("%s append %d: %v", key, i, err)
					return
				}
			}
		}(keys[w], float64(w))
	}
	wg.Wait()

	if got := s.bytes.Load(); got > 20<<10 {
		t.Fatalf("store holds %d bytes, budget 20KiB", got)
	}
	if ev := reg.Counter("store.evictions").Value(); ev == 0 {
		t.Fatal("no evictions despite blowing the budget")
	}

	for _, key := range keys {
		ss, err := s.session(key)
		if err != nil {
			t.Fatal(err)
		}
		ss.mu.Lock()
		blocks := append([]blockInfo(nil), ss.blocks...)
		bins := append([]TierBin(nil), ss.tiers.series[0][seriesWave].bins...)
		bufLen := len(ss.buf)
		ss.mu.Unlock()

		// Remaining blocks are contiguous and ascending: eviction only
		// ever pops the session's oldest block.
		for i := 1; i < len(blocks); i++ {
			if blocks[i].seq != blocks[i-1].seq+1 {
				t.Fatalf("%s: eviction skipped a block: seq %d then %d", key, blocks[i-1].seq, blocks[i].seq)
			}
		}
		// Tier-index consistency: no bin may describe time before the
		// oldest retained data.
		if len(blocks) > 0 && len(bins) > 0 && bins[0].Start+1 <= blocks[0].t0 {
			t.Fatalf("%s: tier bin at %v predates oldest block t0 %v", key, bins[0].Start, blocks[0].t0)
		}
		// On-disk files mirror the in-memory inventory.
		entries, err := os.ReadDir(filepath.Join(dir, key))
		if err != nil {
			t.Fatal(err)
		}
		onDisk := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".pbgz") {
				onDisk++
			}
		}
		if onDisk != len(blocks) {
			t.Fatalf("%s: %d block files on disk, inventory has %d", key, onDisk, len(blocks))
		}
		if len(blocks) == 0 && bufLen == 0 && len(bins) != 0 {
			t.Fatalf("%s: tier bins survive with no data behind them", key)
		}
	}

	// Queries after eviction still work and never fail on evicted spans.
	for _, key := range keys {
		if _, err := s.Range(key, 0, 0, "1s"); err != nil {
			t.Fatalf("%s: post-eviction tier query: %v", key, err)
		}
		if _, err := s.Range(key, 0, 0, RawTier); err != nil {
			t.Fatalf("%s: post-eviction raw query: %v", key, err)
		}
	}
}

// TestRetentionAge evicts by wall-clock seal age using a fake clock.
func TestRetentionAge(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	reg := metrics.NewRegistry()
	s, err := Open(Config{
		Dir: t.TempDir(), BlockSeconds: 1, MaxAge: time.Hour,
		TierSeconds: []float64{1}, Metrics: reg, Now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "k", 0, 25) // two sealed blocks
	ss, _ := s.session("k")
	ss.mu.Lock()
	sealed := len(ss.blocks)
	ss.mu.Unlock()
	if sealed != 2 {
		t.Fatalf("sealed %d blocks, want 2", sealed)
	}

	advance(30 * time.Minute)
	s.Sweep()
	if ev := reg.Counter("store.evictions").Value(); ev != 0 {
		t.Fatalf("evicted %d blocks before MaxAge", ev)
	}

	advance(31 * time.Minute)
	s.Sweep()
	ss.mu.Lock()
	left := len(ss.blocks)
	ss.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d blocks survive past MaxAge", left)
	}
	if ev := reg.Counter("store.evictions").Value(); ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
}

// TestRetentionGlobalOrder checks that eviction picks the globally
// oldest sealed block across sessions, not per-session round-robin.
func TestRetentionGlobalOrder(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), BlockSeconds: 1, TierSeconds: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Session a seals two blocks first, then session b seals two.
	for _, key := range []string{"a", "b"} {
		if err := s.OpenSession(key, testMeta); err != nil {
			t.Fatal(err)
		}
	}
	fill(t, s, "a", 0, 25)
	fill(t, s, "b", 0, 25)

	// Shrink the budget after the fact and sweep: session a's blocks
	// sealed earlier, so they must go first.
	sa, _ := s.session("a")
	sb, _ := s.session("b")
	sa.mu.Lock()
	aBytes := int64(0)
	for _, bi := range sa.blocks {
		aBytes += bi.bytes
	}
	sa.mu.Unlock()
	s.cfg.MaxBytes = s.bytes.Load() - aBytes // room for all but a's blocks
	s.Sweep()

	sa.mu.Lock()
	aLeft := len(sa.blocks)
	sa.mu.Unlock()
	sb.mu.Lock()
	bLeft := len(sb.blocks)
	sb.mu.Unlock()
	if aLeft != 0 || bLeft != 2 {
		t.Fatalf("after sweep: a has %d blocks, b has %d; want 0 and 2", aLeft, bLeft)
	}
}

// TestRetentionSurvivesRestart: seal order is reconstructed from file
// mtimes, so eviction order is stable across a restart.
func TestRetentionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, BlockSeconds: 1, TierSeconds: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OpenSession("old", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "old", 0, 13)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Make "old"'s block visibly older than anything sealed later.
	stale := time.Now().Add(-2 * time.Hour)
	entries, _ := os.ReadDir(filepath.Join(dir, "old"))
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".pbgz") {
			os.Chtimes(filepath.Join(dir, "old", e.Name()), stale, stale)
		}
	}

	s2, err := Open(Config{Dir: dir, BlockSeconds: 1, TierSeconds: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.OpenSession("new", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s2, "new", 0, 13)

	so, _ := s2.session("old")
	sn, _ := s2.session("new")
	so.mu.Lock()
	oldBytes := int64(0)
	for _, bi := range so.blocks {
		oldBytes += bi.bytes
	}
	so.mu.Unlock()
	s2.cfg.MaxBytes = s2.bytes.Load() - oldBytes
	s2.Sweep()

	so.mu.Lock()
	oLeft := len(so.blocks)
	so.mu.Unlock()
	sn.mu.Lock()
	nLeft := len(sn.blocks)
	sn.mu.Unlock()
	if oLeft != 0 || nLeft == 0 {
		t.Fatalf("after restart sweep: old has %d blocks, new has %d; want old evicted first", oLeft, nLeft)
	}
}
