// Package store is the fleet's tiered trace store: a time-partitioned,
// retention-bounded archive of every session's raw CSI stream and
// estimate history, with precomputed downsample tiers for cheap
// long-range queries.
//
// Layout (one directory per session under the store root, session keys
// path-escaped):
//
//	<root>/<session>/meta.json                      session stream metadata
//	<root>/<session>/blk-<seq>-<t0us>-<t1us>.pbgz   sealed gzip trace blocks
//	<root>/<session>/tiers.bin                      downsample tier index
//	<root>/<session>/tail.pblog                     crash log of the open block
//
// Appends accumulate in an in-memory block buffer mirrored by the tail
// log; when the buffer spans the configured block duration it is sealed:
// compressed with the hardened trace codec into an immutable block file
// (tmp+rename), the tier index is persisted, and the tail log is reset.
// Retention evicts sealed blocks oldest-first (global seal order) when
// the byte or age budget is exceeded, trimming the tier index to match.
// Recovery after a crash rebuilds the session from the directory: sealed
// blocks and the tier index are intact by construction, and the tail log
// yields every complete record — at most the torn trailing record (plus
// estimate-history points since the last seal) is lost.
package store

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/cmplx"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phasebeat/internal/core"
	"phasebeat/internal/metrics"
	"phasebeat/internal/trace"
)

var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrReadOnly reports a mutation on a read-only store.
	ErrReadOnly = errors.New("store: read-only")
	// ErrUnknownSession reports a query or append for a session the store
	// does not hold.
	ErrUnknownSession = errors.New("store: unknown session")
	// ErrUnknownTier reports a range query naming a tier the store does
	// not maintain.
	ErrUnknownTier = errors.New("store: unknown tier")
	// ErrBadRange reports a range query whose interval is empty or
	// inverted.
	ErrBadRange = errors.New("store: bad range")
)

// DefaultTierSeconds are the downsample resolutions maintained per
// session, finest first.
var DefaultTierSeconds = []float64{1, 10, 60}

// Config configures a Store.
type Config struct {
	// Dir is the store root directory (created if missing).
	Dir string
	// BlockSeconds is the trace-time span buffered before a block is
	// sealed (default 60 — one analysis window per block at the paper's
	// operating point).
	BlockSeconds float64
	// TierSeconds are the downsample tier resolutions in ascending order
	// (default DefaultTierSeconds).
	TierSeconds []float64
	// MaxBytes bounds the total size of sealed block files; exceeding it
	// evicts the globally oldest sealed blocks. Zero = unlimited. The
	// unsealed tail and the tier index are outside the budget.
	MaxBytes int64
	// MaxAge evicts sealed blocks older (by wall-clock seal time) than
	// this. Zero = unlimited.
	MaxAge time.Duration
	// ReadOnly opens the store for queries and replay without mutating
	// the directory: appends fail, recovery does not rewrite the tail
	// log, Close persists nothing. Use it for postmortem access to a
	// store another process may still own.
	ReadOnly bool
	// Metrics, when non-nil, receives the store.* counters and gauges.
	Metrics *metrics.Registry
	// Logger, when non-nil, receives seal/evict/recovery events.
	Logger *slog.Logger
	// Now overrides the wall clock (tests). Nil = time.Now.
	Now func() time.Time
}

// Meta is a session's stream metadata, persisted as meta.json so a
// postmortem replay can rebuild the exact Monitor configuration the
// session ran with.
type Meta struct {
	SampleRate     float64 `json:"sample_rate"`
	NumAntennas    int     `json:"num_antennas"`
	NumSubcarriers int     `json:"num_subcarriers"`
	WindowSeconds  float64 `json:"window_seconds,omitempty"`
	StrideSeconds  float64 `json:"stride_seconds,omitempty"`
	Persons        int     `json:"persons,omitempty"`
}

// Stats is a point-in-time store summary.
type Stats struct {
	Sessions      int
	Blocks        int
	Bytes         int64
	Seals         uint64
	Evictions     uint64
	TailRecovered uint64
	TailLost      uint64
}

// blockInfo describes one sealed, immutable block file.
type blockInfo struct {
	seq      uint64 // per-session seal order
	sealSeq  uint64 // store-global seal order (eviction key)
	t0, t1   float64
	packets  int
	bytes    int64
	sealedAt time.Time
	path     string
}

// sessionStore is one session's mutable state. Its mutex guards
// everything below it; Store.mu (sessions map, retention accounting) is
// never held while a session mutex is taken by the append path, and the
// eviction path locks sessions one at a time.
type sessionStore struct {
	mu sync.Mutex

	key  string
	dir  string
	meta Meta

	seq     uint64
	blocks  []blockInfo
	tiers   *tierSet
	buf     []trace.Packet
	tail    *tailWriter
	lastT   float64 // newest accepted packet time
	haveT   bool
	updates uint64 // estimate-history points recorded
	sealed  bool   // closed for appends (CloseSession)
}

// Store is the tiered trace store. All methods are safe for concurrent
// use.
type Store struct {
	cfg Config
	now func() time.Time

	mu       sync.Mutex
	sessions map[string]*sessionStore
	closed   bool

	bytes   atomic.Int64
	sealSeq atomic.Uint64

	seals, evictions         *metrics.Counter
	tailRecovered, tailLost  *metrics.Counter
	rawHits, blocksRead      *metrics.Counter
	appendRejected           *metrics.Counter
	tierHits                 []*metrics.Counter // parallel to cfg.TierSeconds
	blockCorrupt, blocksLost *metrics.Counter
	appendSeconds            *metrics.Histogram
}

// Open opens (and, unless read-only, creates) the store rooted at
// cfg.Dir, recovering any sessions already on disk.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	if cfg.BlockSeconds == 0 {
		cfg.BlockSeconds = 60
	}
	if cfg.BlockSeconds <= 0 || math.IsNaN(cfg.BlockSeconds) || math.IsInf(cfg.BlockSeconds, 0) {
		return nil, fmt.Errorf("store: block duration %v", cfg.BlockSeconds)
	}
	if len(cfg.TierSeconds) == 0 {
		cfg.TierSeconds = DefaultTierSeconds
	}
	if len(cfg.TierSeconds) > maxTiers {
		return nil, fmt.Errorf("store: %d tiers exceeds %d", len(cfg.TierSeconds), maxTiers)
	}
	last := 0.0
	for _, d := range cfg.TierSeconds {
		if !(d > last) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("store: tier durations must ascend and be finite: %v", cfg.TierSeconds)
		}
		last = d
	}
	s := &Store{
		cfg:      cfg,
		now:      cfg.Now,
		sessions: make(map[string]*sessionStore),
	}
	if s.now == nil {
		s.now = time.Now
	}
	if !cfg.ReadOnly {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s.register(cfg.Metrics)
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// register wires the store metrics into reg (nil is a no-op: the metric
// types' nil-safe methods make every hook free when disabled).
func (s *Store) register(reg *metrics.Registry) {
	s.seals = reg.Counter("store.seals")
	s.evictions = reg.Counter("store.evictions")
	s.tailRecovered = reg.Counter("store.tail.recovered")
	s.tailLost = reg.Counter("store.tail.lost")
	s.rawHits = reg.Counter("store.raw.hits")
	s.blocksRead = reg.Counter("store.blocks.read")
	s.appendRejected = reg.Counter("store.append.rejected")
	s.blockCorrupt = reg.Counter("store.blocks.corrupt")
	s.blocksLost = reg.Counter("store.blocks.lost")
	s.tierHits = make([]*metrics.Counter, len(s.cfg.TierSeconds))
	for i, d := range s.cfg.TierSeconds {
		s.tierHits[i] = reg.Counter("store.tier.hits." + TierLabel(d))
	}
	if reg == nil {
		return
	}
	// Append latency (tail write + tier ingestion + any seal it caused)
	// on the shared LatencyBounds ladder so it lines up with the fleet
	// span histograms. Registered only with a live registry: AppendPacket
	// gates its clock reads on the field being non-nil.
	s.appendSeconds = reg.Histogram("store.append.seconds", metrics.LatencyBounds)
	reg.RegisterFunc("store.sessions", func() float64 { return float64(s.Stats().Sessions) })
	reg.RegisterFunc("store.blocks", func() float64 { return float64(s.Stats().Blocks) })
	reg.RegisterFunc("store.bytes", func() float64 { return float64(s.bytes.Load()) })
}

// Stats returns the current store summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	sess := make([]*sessionStore, 0, len(s.sessions))
	for _, ss := range s.sessions {
		sess = append(sess, ss)
	}
	s.mu.Unlock()
	st := Stats{
		Sessions:      len(sess),
		Bytes:         s.bytes.Load(),
		Seals:         s.seals.Value(),
		Evictions:     s.evictions.Value(),
		TailRecovered: s.tailRecovered.Value(),
		TailLost:      s.tailLost.Value(),
	}
	for _, ss := range sess {
		ss.mu.Lock()
		st.Blocks += len(ss.blocks)
		ss.mu.Unlock()
	}
	return st
}

// sessionDir maps a session key to its directory (keys are untrusted
// strings off the wire — path-escape them).
func (s *Store) sessionDir(key string) string {
	return filepath.Join(s.cfg.Dir, url.PathEscape(key))
}

// OpenSession registers a session and persists its metadata. Reopening a
// live or recovered session is idempotent (the new metadata wins when it
// is more complete).
func (s *Store) OpenSession(key string, meta Meta) error {
	if key == "" {
		return errors.New("store: empty session key")
	}
	if s.cfg.ReadOnly {
		return ErrReadOnly
	}
	if meta.SampleRate <= 0 || meta.NumAntennas < 1 || meta.NumSubcarriers < 1 {
		return fmt.Errorf("store: open %q: incomplete meta %+v", key, meta)
	}
	if meta.NumAntennas > maxTailAntennas || meta.NumSubcarriers > maxTailSubcarriers {
		return fmt.Errorf("store: open %q: shape %d×%d exceeds %d×%d",
			key, meta.NumAntennas, meta.NumSubcarriers, maxTailAntennas, maxTailSubcarriers)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	ss := s.sessions[key]
	if ss == nil {
		ss = &sessionStore{key: key, dir: s.sessionDir(key), tiers: newTierSet(s.cfg.TierSeconds)}
		s.sessions[key] = ss
	}
	s.mu.Unlock()

	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.meta = meta
	ss.sealed = false
	if err := os.MkdirAll(ss.dir, 0o755); err != nil {
		return fmt.Errorf("store: open %q: %w", key, err)
	}
	if err := writeJSONAtomic(filepath.Join(ss.dir, "meta.json"), ss.meta); err != nil {
		return fmt.Errorf("store: open %q: %w", key, err)
	}
	if ss.tail == nil {
		tw, err := newTailWriter(filepath.Join(ss.dir, "tail.pblog"),
			meta.SampleRate, meta.NumAntennas, meta.NumSubcarriers)
		if err != nil {
			return fmt.Errorf("store: open %q: %w", key, err)
		}
		// Recovered tail packets (already in ss.buf) must survive the
		// header rewrite: re-log them so the on-disk tail mirrors the
		// buffer again.
		for _, p := range ss.buf {
			if err := tw.append(p); err != nil {
				tw.close()
				return fmt.Errorf("store: open %q: relog tail: %w", key, err)
			}
		}
		ss.tail = tw
	}
	return nil
}

// AppendPacket records one CSI packet into the session's open block. The
// packet is retained until seal and must not be mutated by the caller
// afterwards. Packets that do not match the session shape or run
// backwards in time are rejected (counted in store.append.rejected) so a
// sealed block always satisfies the trace codec's validity contract.
func (s *Store) AppendPacket(key string, p trace.Packet) error {
	// Observe the append latency only when a registry is wired — no
	// registry, no clock reads (DESIGN §9).
	if s.appendSeconds != nil {
		t0 := time.Now()
		defer func() { s.appendSeconds.Observe(time.Since(t0).Seconds()) }()
	}
	ss, err := s.mutableSession(key)
	if err != nil {
		return err
	}
	ss.mu.Lock()
	if ss.sealed || ss.tail == nil {
		ss.mu.Unlock()
		return fmt.Errorf("%w: %q not open for append", ErrUnknownSession, key)
	}
	if len(p.CSI) != ss.meta.NumAntennas {
		ss.mu.Unlock()
		s.appendRejected.Inc()
		return fmt.Errorf("store: %q: packet has %d antennas, want %d", key, len(p.CSI), ss.meta.NumAntennas)
	}
	for _, row := range p.CSI {
		if len(row) != ss.meta.NumSubcarriers {
			ss.mu.Unlock()
			s.appendRejected.Inc()
			return fmt.Errorf("store: %q: packet row has %d subcarriers, want %d",
				key, len(row), ss.meta.NumSubcarriers)
		}
	}
	if math.IsNaN(p.Time) || (ss.haveT && p.Time < ss.lastT) {
		ss.mu.Unlock()
		s.appendRejected.Inc()
		return fmt.Errorf("store: %q: non-monotonic packet time %v", key, p.Time)
	}
	if err := ss.tail.append(p); err != nil {
		ss.mu.Unlock()
		return fmt.Errorf("store: %q: tail: %w", key, err)
	}
	// Copy the CSI: callers (the fleet arena in particular) recycle
	// packet backing arrays after the append returns, and buf is held
	// until the block seals.
	ss.buf = append(ss.buf, clonePacket(p))
	ss.lastT, ss.haveT = p.Time, true
	ss.tiers.add(seriesWave, p.Time, waveSample(p))
	sealed := false
	if span := p.Time - ss.buf[0].Time; span >= s.cfg.BlockSeconds {
		if err := s.sealLocked(ss); err != nil {
			ss.mu.Unlock()
			return err
		}
		sealed = true
	}
	ss.mu.Unlock()
	if sealed {
		s.enforceRetention()
	}
	return nil
}

// AppendUpdate records one Monitor update into the session's estimate
// history tiers. Updates carrying no estimate (errored windows) are
// skipped.
func (s *Store) AppendUpdate(key string, u core.Update) error {
	ss, err := s.mutableSession(key)
	if err != nil {
		return err
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.sealed {
		return fmt.Errorf("%w: %q not open for append", ErrUnknownSession, key)
	}
	if r := u.Result; r != nil {
		recorded := false
		if r.Breathing != nil {
			ss.tiers.add(seriesBreath, u.Time, r.Breathing.RateBPM)
			recorded = true
		}
		if r.Heart != nil {
			ss.tiers.add(seriesHeart, u.Time, r.Heart.RateBPM)
			recorded = true
		}
		if recorded {
			ss.updates++
		}
	}
	return nil
}

// mutableSession resolves key for an append.
func (s *Store) mutableSession(key string) (*sessionStore, error) {
	if s.cfg.ReadOnly {
		return nil, ErrReadOnly
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	ss := s.sessions[key]
	if ss == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, key)
	}
	return ss, nil
}

// session resolves key for a query (allowed on read-only stores).
func (s *Store) session(key string) (*sessionStore, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.sessions[key]
	if ss == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, key)
	}
	return ss, nil
}

// CloseSession seals the session's open block and persists its tier
// index. The session stays queryable; further appends fail until it is
// reopened.
func (s *Store) CloseSession(key string) error {
	ss, err := s.mutableSession(key)
	if err != nil {
		return err
	}
	ss.mu.Lock()
	if err := s.sealLocked(ss); err != nil {
		ss.mu.Unlock()
		return err
	}
	ss.sealed = true
	tail := ss.tail
	ss.tail = nil
	ss.mu.Unlock()
	if cerr := tail.close(); cerr != nil && err == nil {
		err = cerr
	}
	s.enforceRetention()
	return err
}

// Close seals every open session and releases the store. Further
// operations fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sess := make([]*sessionStore, 0, len(s.sessions))
	for _, ss := range s.sessions {
		sess = append(sess, ss)
	}
	s.mu.Unlock()
	var first error
	for _, ss := range sess {
		ss.mu.Lock()
		if !s.cfg.ReadOnly && !ss.sealed {
			if err := s.sealLocked(ss); err != nil && first == nil {
				first = err
			}
		}
		ss.sealed = true
		tail := ss.tail
		ss.tail = nil
		ss.mu.Unlock()
		if err := tail.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// sealLocked flushes the session's buffered packets into an immutable
// block file, persists the tier index, and resets the tail log. Caller
// holds ss.mu.
func (s *Store) sealLocked(ss *sessionStore) error {
	if s.cfg.ReadOnly {
		return ErrReadOnly
	}
	if len(ss.buf) == 0 {
		return nil
	}
	t0, t1 := ss.buf[0].Time, ss.buf[len(ss.buf)-1].Time
	tr := &trace.Trace{
		SampleRate:     ss.meta.SampleRate,
		NumAntennas:    ss.meta.NumAntennas,
		NumSubcarriers: ss.meta.NumSubcarriers,
		Packets:        ss.buf,
	}
	name := blockName(ss.seq, t0, t1)
	path := filepath.Join(ss.dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: seal %q: %w", ss.key, err)
	}
	if err := trace.WriteCompressed(f, tr); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: seal %q: %w", ss.key, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: seal %q: %w", ss.key, err)
	}
	fi, err := os.Stat(tmp)
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: seal %q: %w", ss.key, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: seal %q: %w", ss.key, err)
	}
	bi := blockInfo{
		seq:      ss.seq,
		sealSeq:  s.sealSeq.Add(1),
		t0:       t0,
		t1:       t1,
		packets:  len(ss.buf),
		bytes:    fi.Size(),
		sealedAt: s.now(),
		path:     path,
	}
	ss.seq++
	ss.blocks = append(ss.blocks, bi)
	s.bytes.Add(bi.bytes)
	// Release the packet references; the backing array is reused.
	for i := range ss.buf {
		ss.buf[i] = trace.Packet{}
	}
	ss.buf = ss.buf[:0]
	if ss.tail != nil {
		if err := ss.tail.reset(ss.meta.SampleRate); err != nil {
			return fmt.Errorf("store: seal %q: tail reset: %w", ss.key, err)
		}
	}
	if err := s.persistTiersLocked(ss); err != nil {
		return err
	}
	s.seals.Inc()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Debug("block sealed", "session", ss.key,
			"seq", bi.seq, "t0", t0, "t1", t1, "packets", bi.packets, "bytes", bi.bytes)
	}
	return nil
}

// persistTiersLocked writes tiers.bin atomically. Caller holds ss.mu.
func (s *Store) persistTiersLocked(ss *sessionStore) error {
	path := filepath.Join(ss.dir, "tiers.bin")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: tiers %q: %w", ss.key, err)
	}
	if err := writeTiers(f, ss.tiers); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: tiers %q: %w", ss.key, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: tiers %q: %w", ss.key, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: tiers %q: %w", ss.key, err)
	}
	return nil
}

// enforceRetention evicts globally-oldest sealed blocks until the byte
// and age budgets hold. Called without any session lock held.
func (s *Store) enforceRetention() {
	if s.cfg.ReadOnly || (s.cfg.MaxBytes <= 0 && s.cfg.MaxAge <= 0) {
		return
	}
	for {
		s.mu.Lock()
		sess := make([]*sessionStore, 0, len(s.sessions))
		for _, ss := range s.sessions {
			sess = append(sess, ss)
		}
		s.mu.Unlock()
		var (
			victim *sessionStore
			oldest blockInfo
			found  bool
		)
		for _, ss := range sess {
			ss.mu.Lock()
			if len(ss.blocks) > 0 && (!found || ss.blocks[0].sealSeq < oldest.sealSeq) {
				victim, oldest, found = ss, ss.blocks[0], true
			}
			ss.mu.Unlock()
		}
		if !found {
			return
		}
		overBytes := s.cfg.MaxBytes > 0 && s.bytes.Load() > s.cfg.MaxBytes
		overAge := s.cfg.MaxAge > 0 && s.now().Sub(oldest.sealedAt) > s.cfg.MaxAge
		if !overBytes && !overAge {
			return
		}
		victim.mu.Lock()
		// Re-check under the lock: a concurrent evictor may have beaten
		// us to this block.
		if len(victim.blocks) == 0 || victim.blocks[0].sealSeq != oldest.sealSeq {
			victim.mu.Unlock()
			continue
		}
		victim.blocks = append(victim.blocks[:0], victim.blocks[1:]...)
		cutoff := math.Inf(1) // no data left: wipe the tier index
		if len(victim.blocks) > 0 {
			cutoff = victim.blocks[0].t0
		} else if len(victim.buf) > 0 {
			cutoff = victim.buf[0].Time
		}
		victim.tiers.trim(cutoff)
		tiersErr := s.persistTiersLocked(victim)
		victim.mu.Unlock()
		if err := os.Remove(oldest.path); err != nil && !os.IsNotExist(err) {
			if s.cfg.Logger != nil {
				s.cfg.Logger.Warn("evict remove failed", "path", oldest.path, "err", err)
			}
		}
		s.bytes.Add(-oldest.bytes)
		s.evictions.Inc()
		if s.cfg.Logger != nil {
			s.cfg.Logger.Debug("block evicted", "session", victim.key,
				"seq", oldest.seq, "bytes", oldest.bytes, "tiersErr", tiersErr)
		}
	}
}

// Sweep applies the age budget immediately (the byte budget is enforced
// at seal time; a daemon can call Sweep periodically so idle sessions
// age out too).
func (s *Store) Sweep() { s.enforceRetention() }

// blockName encodes a block's identity into its filename:
// blk-<seq>-<t0 µs>-<t1 µs>.pbgz, zero-padded so lexical order is seal
// order.
func blockName(seq uint64, t0, t1 float64) string {
	return fmt.Sprintf("blk-%08d-%015d-%015d.pbgz", seq, int64(t0*1e6), int64(t1*1e6))
}

// parseBlockName inverts blockName.
func parseBlockName(name string) (seq uint64, t0, t1 float64, ok bool) {
	if !strings.HasPrefix(name, "blk-") || !strings.HasSuffix(name, ".pbgz") {
		return 0, 0, 0, false
	}
	parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "blk-"), ".pbgz"), "-")
	if len(parts) != 3 {
		return 0, 0, 0, false
	}
	seq, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return 0, 0, 0, false
	}
	us0, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, 0, false
	}
	us1, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return 0, 0, 0, false
	}
	return seq, float64(us0) / 1e6, float64(us1) / 1e6, true
}

// recover rebuilds the session map from the store directory.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		if os.IsNotExist(err) && s.cfg.ReadOnly {
			return fmt.Errorf("store: %w", err)
		}
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	type pending struct {
		ss *sessionStore
		bi blockInfo
	}
	var all []pending
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		key, err := url.PathUnescape(e.Name())
		if err != nil {
			continue
		}
		ss, blocks, err := s.recoverSession(key, filepath.Join(s.cfg.Dir, e.Name()))
		if err != nil {
			if s.cfg.Logger != nil {
				s.cfg.Logger.Warn("session recovery failed", "session", key, "err", err)
			}
			continue
		}
		s.sessions[key] = ss
		for _, bi := range blocks {
			all = append(all, pending{ss, bi})
		}
	}
	// Assign the global seal order blocks will be evicted in: wall-clock
	// seal time (file mtime survives the restart), ties broken by key
	// and per-session sequence.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if !a.bi.sealedAt.Equal(b.bi.sealedAt) {
			return a.bi.sealedAt.Before(b.bi.sealedAt)
		}
		if a.ss.key != b.ss.key {
			return a.ss.key < b.ss.key
		}
		return a.bi.seq < b.bi.seq
	})
	for _, p := range all {
		p.bi.sealSeq = s.sealSeq.Add(1)
		p.ss.blocks = append(p.ss.blocks, p.bi)
		s.bytes.Add(p.bi.bytes)
	}
	// Within a session, order blocks by per-session sequence (the append
	// above kept global seal order, which can interleave mtime ties).
	for _, ss := range s.sessions {
		sort.Slice(ss.blocks, func(i, j int) bool { return ss.blocks[i].seq < ss.blocks[j].seq })
		if n := len(ss.blocks); n > 0 {
			ss.seq = ss.blocks[n-1].seq + 1
		}
	}
	s.enforceRetention()
	return nil
}

// recoverSession rebuilds one session directory: metadata, sealed block
// inventory, tier index, and the crash tail.
func (s *Store) recoverSession(key, dir string) (*sessionStore, []blockInfo, error) {
	ss := &sessionStore{key: key, dir: dir, tiers: newTierSet(s.cfg.TierSeconds), sealed: true}
	if err := readJSON(filepath.Join(dir, "meta.json"), &ss.meta); err != nil {
		return nil, nil, fmt.Errorf("meta.json: %w", err)
	}
	if ss.meta.SampleRate <= 0 || ss.meta.NumAntennas < 1 || ss.meta.NumSubcarriers < 1 {
		return nil, nil, fmt.Errorf("meta.json: incomplete meta %+v", ss.meta)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var blocks []blockInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A seal died mid-write; the block's packets are still in the
			// tail log, so the torn temp file is just garbage.
			if !s.cfg.ReadOnly {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		seq, t0, t1, ok := parseBlockName(name)
		if !ok {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		blocks = append(blocks, blockInfo{
			seq: seq, t0: t0, t1: t1,
			bytes: fi.Size(), sealedAt: fi.ModTime(),
			path: filepath.Join(dir, name),
		})
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].seq < blocks[j].seq })

	// Tier index: atomic writes mean it is either absent (no seal yet) or
	// intact. If it is damaged anyway (disk fault), rebuild the waveform
	// series from the sealed blocks; the estimate history cannot be
	// reconstructed from raw CSI and is lost with a warning.
	tiersPath := filepath.Join(dir, "tiers.bin")
	if f, err := os.Open(tiersPath); err == nil {
		ts, terr := readTiers(f)
		f.Close()
		switch {
		case terr == nil && len(ts.durs) == len(s.cfg.TierSeconds) && sameDurs(ts.durs, s.cfg.TierSeconds):
			ss.tiers = ts
		default:
			if s.cfg.Logger != nil {
				s.cfg.Logger.Warn("tier index rebuilt", "session", key, "err", terr)
			}
			s.rebuildWaveTiers(ss, blocks)
		}
	} else if len(blocks) > 0 {
		s.rebuildWaveTiers(ss, blocks)
	}

	// Crash tail: keep every complete record, discard a torn trailer.
	if f, err := os.Open(filepath.Join(dir, "tail.pblog")); err == nil {
		_, pkts, partial, terr := readTail(f)
		f.Close()
		if terr != nil {
			s.tailLost.Inc()
			if s.cfg.Logger != nil {
				s.cfg.Logger.Warn("tail log unusable", "session", key, "err", terr)
			}
		} else {
			// Only packets newer than the last sealed block belong in the
			// buffer (a crash between block rename and tail reset replays
			// the sealed packets into the tail).
			minT := math.Inf(-1)
			if n := len(blocks); n > 0 {
				minT = blocks[n-1].t1
			}
			for _, p := range pkts {
				if p.Time <= minT {
					continue
				}
				ss.buf = append(ss.buf, p)
				ss.lastT, ss.haveT = p.Time, true
				ss.tiers.add(seriesWave, p.Time, waveSample(p))
			}
			s.tailRecovered.Add(uint64(len(ss.buf)))
			if partial {
				s.tailLost.Inc()
			}
		}
	}
	if !ss.haveT && len(blocks) > 0 {
		ss.lastT, ss.haveT = blocks[len(blocks)-1].t1, true
	}
	return ss, blocks, nil
}

// rebuildWaveTiers regenerates the waveform tier series by decoding the
// sealed blocks — the recovery path for a damaged tier index.
func (s *Store) rebuildWaveTiers(ss *sessionStore, blocks []blockInfo) {
	ss.tiers = newTierSet(s.cfg.TierSeconds)
	for _, bi := range blocks {
		tr, err := readBlock(bi.path)
		if err != nil {
			s.blockCorrupt.Inc()
			continue
		}
		for _, p := range tr.Packets {
			ss.tiers.add(seriesWave, p.Time, waveSample(p))
		}
	}
}

func sameDurs(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readBlock decodes one sealed block file with the hardened gzip trace
// reader (CRC-verified, prealloc-bounded).
func readBlock(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCompressed(f)
}

// waveSample reduces one CSI packet to the scalar the waveform tiers
// track: the phase difference between the first two antennas on the
// middle subcarrier — the paper's breathing-carrying observable — or the
// middle-subcarrier amplitude when only one antenna is present.
func waveSample(p trace.Packet) float64 {
	if len(p.CSI) == 0 || len(p.CSI[0]) == 0 {
		return 0
	}
	mid := len(p.CSI[0]) / 2
	if len(p.CSI) >= 2 && len(p.CSI[1]) > mid {
		return cmplx.Phase(p.CSI[0][mid] * cmplx.Conj(p.CSI[1][mid]))
	}
	return cmplx.Abs(p.CSI[0][mid])
}

// clonePacket deep-copies a packet's CSI into one flat allocation so the
// store's copy survives the caller recycling its backing arrays.
func clonePacket(p trace.Packet) trace.Packet {
	if len(p.CSI) == 0 {
		return p
	}
	subs := len(p.CSI[0])
	flat := make([]complex128, len(p.CSI)*subs)
	rows := make([][]complex128, len(p.CSI))
	for i, row := range p.CSI {
		dst := flat[i*subs : (i+1)*subs : (i+1)*subs]
		copy(dst, row)
		rows[i] = dst
	}
	p.CSI = rows
	return p
}

// writeJSONAtomic marshals v to path via tmp+rename.
func writeJSONAtomic(path string, v any) error {
	data, err := jsonMarshal(v)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
