package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phasebeat/internal/core"
	"phasebeat/internal/metrics"
	"phasebeat/internal/trace"
)

// mkPacket builds a packet whose middle-subcarrier phase difference is
// phase — the observable waveSample extracts.
func mkPacket(t float64, ants, subs int, phase float64) trace.Packet {
	p := trace.NewPacket(t, ants, subs)
	for a := 0; a < ants; a++ {
		for s := 0; s < subs; s++ {
			p.CSI[a][s] = complex(1, 0)
		}
	}
	if ants >= 2 {
		mid := subs / 2
		p.CSI[0][mid] = complex(math.Cos(phase), math.Sin(phase))
	}
	return p
}

var testMeta = Meta{SampleRate: 10, NumAntennas: 2, NumSubcarriers: 4,
	WindowSeconds: 8, StrideSeconds: 2}

// fill appends n packets at 10 Hz starting at t0 with a slow phase sweep.
func fill(t *testing.T, s *Store, key string, t0 float64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tm := t0 + float64(i)/testMeta.SampleRate
		if err := s.AppendPacket(key, mkPacket(tm, 2, 4, math.Sin(tm))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, err := Open(Config{Dir: dir, BlockSeconds: 1, TierSeconds: []float64{0.5, 2}, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OpenSession("living/room", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "living/room", 0, 45) // 4.4 s @ 10 Hz → seals at 1.0s spans
	if err := s.AppendUpdate("living/room", core.Update{Time: 4.0, Result: &core.Result{
		Breathing: &core.BreathingEstimate{RateBPM: 15},
		Heart:     &core.HeartEstimate{RateBPM: 72},
	}}); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Sessions != 1 || st.Blocks < 3 {
		t.Fatalf("stats = %+v, want 1 session, >=3 blocks", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("bytes gauge not tracking: %+v", st)
	}

	// Tier query over the full span touches no block files.
	res, err := s.Range("living/room", 0, 0, "2s")
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksRead != 0 {
		t.Fatalf("tier query read %d blocks", res.BlocksRead)
	}
	if len(res.Wave) != 3 { // 4.4 s of data in 2 s bins → starts 0, 2, 4
		t.Fatalf("wave bins = %d (%+v)", len(res.Wave), res.Wave)
	}
	if got := res.Wave[0].Count; got != 20 {
		t.Fatalf("bin 0 count = %d, want 20", got)
	}
	if len(res.Breathing) != 1 || res.Breathing[0].Last != 15 {
		t.Fatalf("breathing bins = %+v", res.Breathing)
	}
	if len(res.Heart) != 1 || res.Heart[0].Last != 72 {
		t.Fatalf("heart bins = %+v", res.Heart)
	}
	// The envelope is min/max-preserving: the sweep's extremes survive.
	if res.Wave[0].Min >= res.Wave[0].Max {
		t.Fatalf("bin envelope collapsed: %+v", res.Wave[0])
	}
	if hits := reg.Counter("store.tier.hits.2s").Value(); hits != 1 {
		t.Fatalf("tier.hits.2s = %d", hits)
	}

	// Raw query decodes exactly the overlapping blocks plus the tail.
	res, err = s.Range("living/room", 0, 0, RawTier)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 45 {
		t.Fatalf("raw samples = %d, want 45", len(res.Samples))
	}
	if res.BlocksRead == 0 {
		t.Fatal("raw query should have read blocks")
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].T <= res.Samples[i-1].T {
			t.Fatalf("raw samples out of order at %d", i)
		}
	}

	// Sub-range raw query skips non-overlapping blocks.
	sub, err := s.Range("living/room", 1.05, 2.0, RawTier)
	if err != nil {
		t.Fatal(err)
	}
	if sub.BlocksRead >= res.BlocksRead {
		t.Fatalf("sub-range read %d blocks, full read %d", sub.BlocksRead, res.BlocksRead)
	}
	for _, smp := range sub.Samples {
		if smp.T < 1.05 || smp.T >= 2.0 {
			t.Fatalf("sample %v outside [1.05, 2)", smp.T)
		}
	}

	if bpm, ok := s.LastBPM("living/room"); !ok || bpm != 15 {
		t.Fatalf("LastBPM = %v, %v", bpm, ok)
	}

	infos := s.Sessions()
	if len(infos) != 1 || infos[0].Key != "living/room" || infos[0].LastBPM != 15 {
		t.Fatalf("sessions = %+v", infos)
	}
	if infos[0].From != 0 || infos[0].To < 4.3 {
		t.Fatalf("session span = [%v, %v]", infos[0].From, infos[0].To)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPacket("living/room", mkPacket(9, 2, 4, 0)); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestStoreTierAutoPick(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), TierSeconds: []float64{1, 10, 60}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "k", 0, 20)
	for _, tc := range []struct {
		from, to float64
		want     string
	}{
		{0, 2, "1s"},     // short span: finest
		{0, 45, "10s"},   // 10s*4 fits, 60s*4 does not
		{0, 400, "60s"},  // long span: coarsest
		{100, 103, "1s"}, // empty result still picks by span
	} {
		res, err := s.Range("k", tc.from, tc.to, "")
		if err != nil {
			t.Fatalf("range [%v,%v): %v", tc.from, tc.to, err)
		}
		if res.Tier != tc.want {
			t.Errorf("span [%v,%v) picked %s, want %s", tc.from, tc.to, res.Tier, tc.want)
		}
	}
	if _, err := s.Range("k", 0, 10, "7s"); err == nil {
		t.Fatal("unknown tier accepted")
	}
	if _, err := s.Range("nope", 0, 10, ""); err == nil {
		t.Fatal("unknown session accepted")
	}
	if _, err := s.Range("k", 5, 5, ""); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestStoreAppendGuards(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := Open(Config{Dir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPacket("k", mkPacket(1, 2, 4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPacket("k", mkPacket(2, 3, 4, 0)); err == nil {
		t.Fatal("wrong antenna count accepted")
	}
	if err := s.AppendPacket("k", mkPacket(2, 2, 5, 0)); err == nil {
		t.Fatal("wrong subcarrier count accepted")
	}
	if err := s.AppendPacket("k", mkPacket(0.5, 2, 4, 0)); err == nil {
		t.Fatal("backwards time accepted")
	}
	if err := s.AppendPacket("k", mkPacket(math.NaN(), 2, 4, 0)); err == nil {
		t.Fatal("NaN time accepted")
	}
	if got := reg.Counter("store.append.rejected").Value(); got != 4 {
		t.Fatalf("append.rejected = %d, want 4", got)
	}
	if err := s.AppendPacket("unknown", mkPacket(3, 2, 4, 0)); err == nil {
		t.Fatal("unknown session accepted")
	}
	if err := s.OpenSession("", testMeta); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.OpenSession("bad", Meta{}); err == nil {
		t.Fatal("incomplete meta accepted")
	}
	if err := s.OpenSession("big", Meta{SampleRate: 1, NumAntennas: 99, NumSubcarriers: 4}); err == nil {
		t.Fatal("oversized shape accepted")
	}
}

// TestStoreRecovery simulates a kill: the store is abandoned without
// Close (tail flushed per append), then reopened.
func TestStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, err := Open(Config{Dir: dir, BlockSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "k", 0, 27) // 2 sealed blocks + 5 tail packets
	before, err := s.Range("k", 0, 0, RawTier)
	if err != nil {
		t.Fatal(err)
	}
	// Abandoned, not closed: the OS file stays open but everything is
	// flushed, which is exactly the on-disk state after SIGKILL.

	s2, err := Open(Config{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	after, err := s2.Range("k", 0, 0, RawTier)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Samples) != len(before.Samples) {
		t.Fatalf("recovered %d samples, had %d", len(after.Samples), len(before.Samples))
	}
	if got := reg.Counter("store.tail.recovered").Value(); got == 0 {
		t.Fatal("no tail packets recovered")
	}
	// Tier index must cover the tail-recovered span too.
	tres, err := s2.Range("k", 0, 0, "1s")
	if err != nil {
		t.Fatal(err)
	}
	var n uint32
	for _, b := range tres.Wave {
		n += b.Count
	}
	if int(n) != len(before.Samples) {
		t.Fatalf("tier bins cover %d samples, want %d", n, len(before.Samples))
	}

	// The recovered session accepts appends again after reopen.
	if err := s2.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s2, "k", 3.0, 5)
	res, err := s2.Range("k", 0, 0, RawTier)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != len(before.Samples)+5 {
		t.Fatalf("post-recovery samples = %d, want %d", len(res.Samples), len(before.Samples)+5)
	}
}

// TestStoreRecoveryTruncatedTail cuts the tail log mid-record — the
// artifact of a kill during a flush — and expects every complete record
// back, the torn one dropped.
func TestStoreRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, BlockSeconds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "k", 0, 10) // all in the tail, no seal

	tailPath := filepath.Join(dir, "k", "tail.pblog")
	data, err := os.ReadFile(tailPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tailPath, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	s2, err := Open(Config{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Range("k", 0, 0, RawTier)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 9 {
		t.Fatalf("recovered %d samples from truncated tail, want 9", len(res.Samples))
	}
	if got := reg.Counter("store.tail.lost").Value(); got != 1 {
		t.Fatalf("tail.lost = %d, want 1", got)
	}
}

// TestStoreRecoveryCorruptTierIndex damages tiers.bin and expects the
// waveform tiers rebuilt from the sealed blocks.
func TestStoreRecoveryCorruptTierIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, BlockSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "k", 0, 22)
	if err := s.CloseSession("k"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "k", "tiers.bin"), []byte("PBTIgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Range("k", 0, 0, "1s")
	if err != nil {
		t.Fatal(err)
	}
	var n uint32
	for _, b := range res.Wave {
		n += b.Count
	}
	if n != 22 {
		t.Fatalf("rebuilt tiers cover %d samples, want 22", n)
	}
}

// TestStoreRecoveryTornSeal plants a .tmp block — a seal killed before
// rename — and expects it swept while the tail still replays the data.
func TestStoreRecoveryTornSeal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, BlockSeconds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "k", 0, 8)
	torn := filepath.Join(dir, "k", blockName(0, 0, 0.7)+".tmp")
	if err := os.WriteFile(torn, []byte("partial gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn .tmp block survived recovery")
	}
	res, err := s2.Range("k", 0, 0, RawTier)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 8 {
		t.Fatalf("recovered %d samples, want 8", len(res.Samples))
	}
}

func TestStoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, BlockSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "k", 0, 15)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(Config{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.OpenSession("k", testMeta); err == nil {
		t.Fatal("read-only OpenSession succeeded")
	}
	if err := ro.AppendPacket("k", mkPacket(99, 2, 4, 0)); err == nil {
		t.Fatal("read-only append succeeded")
	}
	res, err := ro.Range("k", 0, 0, RawTier)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 15 {
		t.Fatalf("read-only sees %d samples, want 15", len(res.Samples))
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: filepath.Join(dir, "absent"), ReadOnly: true}); err == nil {
		t.Fatal("read-only open of a missing dir succeeded")
	}
}

func TestStoreReplayOrder(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), BlockSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.OpenSession("k", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "k", 0, 33)
	var times []float64
	if err := s.Replay("k", func(p trace.Packet) error {
		times = append(times, p.Time)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(times) != 33 {
		t.Fatalf("replayed %d packets, want 33", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("replay out of order at %d: %v <= %v", i, times[i], times[i-1])
		}
	}
	wantErr := fmt.Errorf("stop")
	n := 0
	err = s.Replay("k", func(trace.Packet) error {
		if n++; n == 5 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("replay error = %v, want stop", err)
	}
}

func TestTierCodecRoundTrip(t *testing.T) {
	ts := newTierSet([]float64{1, 10})
	for i := 0; i < 100; i++ {
		ts.add(seriesWave, float64(i)*0.1, math.Sin(float64(i)))
	}
	ts.add(seriesBreath, 5, 15.5)
	ts.add(seriesHeart, 5, 71)
	var buf bytes.Buffer
	if err := writeTiers(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := readTiers(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.durs) != 2 || got.durs[0] != 1 || got.durs[1] != 10 {
		t.Fatalf("durs = %v", got.durs)
	}
	for i := range ts.series {
		for w := 0; w < numSeries; w++ {
			a, b := ts.series[i][w].bins, got.series[i][w].bins
			if len(a) != len(b) {
				t.Fatalf("tier %d series %d: %d bins != %d", i, w, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("tier %d series %d bin %d: %+v != %+v", i, w, j, a[j], b[j])
				}
			}
		}
	}
}

func TestTierCodecHostileInputs(t *testing.T) {
	valid := func() []byte {
		ts := newTierSet([]float64{1})
		ts.add(seriesWave, 0.5, 1)
		var buf bytes.Buffer
		if err := writeTiers(&buf, ts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      []byte("NOPE"),
		"truncated":      valid[:len(valid)-3],
		"trailing bytes": append(append([]byte{}, valid...), 0xFF),
		"huge bin count": func() []byte {
			b := append([]byte{}, valid...)
			// The first series count lives right after magic+version+
			// tierCount+duration.
			off := 4 + 2 + 1 + 8
			b[off], b[off+1], b[off+2], b[off+3] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}(),
		"zero tiers": func() []byte {
			b := append([]byte{}, valid...)
			b[6] = 0
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := readTiers(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTailCodecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tail.pblog")
	tw, err := newTailWriter(path, 25, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := tw.append(mkPacket(float64(i), 2, 3, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rate, pkts, partial, err := readTail(f)
	f.Close()
	if err != nil || partial {
		t.Fatalf("readTail: err=%v partial=%v", err, partial)
	}
	if rate != 25 || len(pkts) != 7 {
		t.Fatalf("rate=%v pkts=%d", rate, len(pkts))
	}
	for i, p := range pkts {
		if p.Time != float64(i) || len(p.CSI) != 2 || len(p.CSI[0]) != 3 {
			t.Fatalf("packet %d: %+v", i, p)
		}
	}
}

func TestTailCodecHostileInputs(t *testing.T) {
	mk := func(mut func([]byte) []byte) []byte {
		dir := t.TempDir()
		path := filepath.Join(dir, "t")
		tw, err := newTailWriter(path, 10, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		tw.append(mkPacket(1, 1, 2, 0))
		tw.close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return mut(data)
	}
	fatal := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXXrest"),
		"bad shape": mk(func(b []byte) []byte {
			b[14], b[15] = 0xFF, 0xFF // antennas = 65535
			return b
		}),
		"short header": mk(func(b []byte) []byte { return b[:9] }),
	}
	for name, data := range fatal {
		if _, _, _, err := readTail(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A torn record is NOT an error — it is the expected crash artifact.
	torn := mk(func(b []byte) []byte { return b[:len(b)-5] })
	_, pkts, partial, err := readTail(bytes.NewReader(torn))
	if err != nil || !partial || len(pkts) != 0 {
		t.Fatalf("torn record: pkts=%d partial=%v err=%v", len(pkts), partial, err)
	}
}

func TestStoreHTTP(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), BlockSeconds: 1, TierSeconds: []float64{1, 10}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.OpenSession("room a", testMeta); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "room a", 0, 25)
	mux := http.NewServeMux()
	s.RegisterHTTP(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/store/sessions")
	if code != http.StatusOK {
		t.Fatalf("/store/sessions: %d %s", code, body)
	}
	var listing struct {
		Sessions []SessionInfo `json:"sessions"`
		Tiers    []string      `json:"tiers"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Sessions) != 1 || listing.Sessions[0].Key != "room a" {
		t.Fatalf("listing = %+v", listing)
	}
	if len(listing.Tiers) != 2 || listing.Tiers[1] != "10s" {
		t.Fatalf("tiers = %v", listing.Tiers)
	}

	code, body = get("/store/range?session=room+a&from=0&to=2&tier=1s")
	if code != http.StatusOK {
		t.Fatalf("/store/range: %d %s", code, body)
	}
	var res RangeResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Tier != "1s" || len(res.Wave) != 2 || res.BlocksRead != 0 {
		t.Fatalf("range = %+v", res)
	}

	for path, want := range map[string]int{
		"/store/range":                             http.StatusBadRequest,
		"/store/range?session=nope":                http.StatusNotFound,
		"/store/range?session=room+a&tier=9s":      http.StatusBadRequest,
		"/store/range?session=room+a&from=bogus":   http.StatusBadRequest,
		"/store/range?session=room+a&from=5&to=1":  http.StatusBadRequest,
		"/store/range?session=room+a&from=0&to=99": http.StatusOK,
	} {
		if code, body := get(path); code != want {
			t.Errorf("%s: %d (want %d): %s", path, code, want, body)
		}
	}
}
