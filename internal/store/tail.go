package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"phasebeat/internal/trace"
)

// The tail log is the store's crash-durability layer for the not-yet-
// sealed block: every accepted packet is appended to tail.pblog (and
// flushed to the kernel) before it lands in the in-memory block buffer.
// Sealed blocks and the tier index are written with tmp+rename and are
// therefore never partial; the tail is the only file a kill can truncate
// mid-record, so its format is built for truncation — a fixed-size
// header followed by fixed-size packet records, letting recovery keep
// every complete record and discard at most the torn one at the end.
//
//	header: magic "PBTL" | uint16 version | float64 rate |
//	        uint16 antennas | uint16 subcarriers
//	record: float64 time | antennas×subcarriers × (float64 re, float64 im)
const (
	tailMagic   = "PBTL"
	tailVersion = 1
	// Shape bounds mirror the fleet frame parser: recovery refuses to
	// size records from a corrupt header.
	maxTailAntennas    = 16
	maxTailSubcarriers = 256
)

// ErrBadTail reports a tail log whose header is unusable (a truncated
// record body is not an error — it is the expected crash artifact).
var ErrBadTail = errors.New("store: bad tail log")

// tailWriter appends packet records to the session's tail log.
type tailWriter struct {
	f    *os.File
	bw   *bufio.Writer
	ants int
	subs int
}

// newTailWriter truncates path and writes a fresh header.
func newTailWriter(path string, rate float64, ants, subs int) (*tailWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	tw := &tailWriter{f: f, bw: bufio.NewWriter(f), ants: ants, subs: subs}
	if _, err := tw.bw.WriteString(tailMagic); err != nil {
		f.Close()
		return nil, err
	}
	var b [8]byte
	binary.LittleEndian.PutUint16(b[:2], tailVersion)
	if _, err := tw.bw.Write(b[:2]); err != nil {
		f.Close()
		return nil, err
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(rate))
	if _, err := tw.bw.Write(b[:]); err != nil {
		f.Close()
		return nil, err
	}
	binary.LittleEndian.PutUint16(b[:2], uint16(ants))
	binary.LittleEndian.PutUint16(b[2:4], uint16(subs))
	if _, err := tw.bw.Write(b[:4]); err != nil {
		f.Close()
		return nil, err
	}
	if err := tw.bw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return tw, nil
}

// append writes one packet record and flushes it to the kernel. No fsync:
// the durability target is surviving a killed process, not a powered-off
// machine — phasebeatd's deployment contract (DESIGN §14).
func (tw *tailWriter) append(p trace.Packet) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(p.Time))
	if _, err := tw.bw.Write(b[:]); err != nil {
		return err
	}
	for _, row := range p.CSI {
		for _, c := range row {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(real(c)))
			if _, err := tw.bw.Write(b[:]); err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(imag(c)))
			if _, err := tw.bw.Write(b[:]); err != nil {
				return err
			}
		}
	}
	return tw.bw.Flush()
}

// reset truncates the log back to a fresh header — called after the
// buffered packets it mirrored were sealed into a block.
func (tw *tailWriter) reset(rate float64) error {
	if err := tw.f.Truncate(0); err != nil {
		return err
	}
	if _, err := tw.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	tw.bw.Reset(tw.f)
	if _, err := tw.bw.WriteString(tailMagic); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint16(b[:2], tailVersion)
	if _, err := tw.bw.Write(b[:2]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(rate))
	if _, err := tw.bw.Write(b[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(b[:2], uint16(tw.ants))
	binary.LittleEndian.PutUint16(b[2:4], uint16(tw.subs))
	if _, err := tw.bw.Write(b[:4]); err != nil {
		return err
	}
	return tw.bw.Flush()
}

func (tw *tailWriter) close() error {
	if tw == nil {
		return nil
	}
	err := tw.bw.Flush()
	if cerr := tw.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readTail decodes a tail log, keeping every complete packet record. A
// torn trailing record is reported through partial=true, never as an
// error; an unusable header is ErrBadTail and the whole tail is lost.
func readTail(r io.Reader) (rate float64, pkts []trace.Packet, partial bool, err error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(tailMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, nil, false, fmt.Errorf("%w: magic: %v", ErrBadTail, err)
	}
	if string(magic) != tailMagic {
		return 0, nil, false, fmt.Errorf("%w: magic %q", ErrBadTail, magic)
	}
	var hdr [14]byte // version u16, rate f64, ants u16, subs u16
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, false, fmt.Errorf("%w: header: %v", ErrBadTail, err)
	}
	if v := binary.LittleEndian.Uint16(hdr[:2]); v != tailVersion {
		return 0, nil, false, fmt.Errorf("%w: version %d (supported: %d)", ErrBadTail, v, tailVersion)
	}
	rate = math.Float64frombits(binary.LittleEndian.Uint64(hdr[2:10]))
	ants := int(binary.LittleEndian.Uint16(hdr[10:12]))
	subs := int(binary.LittleEndian.Uint16(hdr[12:14]))
	if ants < 1 || ants > maxTailAntennas || subs < 1 || subs > maxTailSubcarriers {
		return 0, nil, false, fmt.Errorf("%w: shape %d×%d outside [1, %d]×[1, %d]",
			ErrBadTail, ants, subs, maxTailAntennas, maxTailSubcarriers)
	}
	recBytes := 8 + ants*subs*16
	rec := make([]byte, recBytes)
	for {
		_, rerr := io.ReadFull(br, rec)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// Torn trailing record (or an I/O error mid-read): keep what
			// decoded cleanly, flag the partial.
			return rate, pkts, true, nil
		}
		p := trace.NewPacket(math.Float64frombits(binary.LittleEndian.Uint64(rec[:8])), ants, subs)
		off := 8
		for a := 0; a < ants; a++ {
			row := p.CSI[a]
			for s := 0; s < subs; s++ {
				re := math.Float64frombits(binary.LittleEndian.Uint64(rec[off:]))
				im := math.Float64frombits(binary.LittleEndian.Uint64(rec[off+8:]))
				row[s] = complex(re, im)
				off += 16
			}
		}
		pkts = append(pkts, p)
	}
	return rate, pkts, false, nil
}
