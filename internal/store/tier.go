package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// The downsample tiers are the store's cheap long-range query path: for
// every session, three fixed-resolution summaries of the breathing
// waveform and the estimate history are maintained alongside the sealed
// raw blocks. Each tier is a run of time-aligned bins; each bin keeps the
// min/max envelope plus the first/last values of everything that landed
// in it — the min/max-preserving decimation idiom (golpm
// DownsampleSamples, goldmine DownSample), which keeps breathing peaks
// visible at any zoom level where a plain stride-decimation would alias
// them away.
//
// Bins accumulate incrementally on every append and are persisted to
// tiers.bin (atomic tmp+rename) at block-seal time, so the on-disk tier
// index always describes exactly the sealed data plus nothing newer than
// the crash-recoverable tail.

// TierBin is one downsample bin: the min/max-preserving summary of every
// sample whose timestamp fell in [Start, Start+duration).
type TierBin struct {
	// Start is the bin's start time (trace seconds, aligned to the tier
	// duration).
	Start float64 `json:"start"`
	// Count is the number of samples accumulated into the bin.
	Count uint32 `json:"count"`
	// Min and Max are the bin's value envelope; First and Last the
	// boundary values, so adjacent bins can be joined without gaps.
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	First float64 `json:"first"`
	Last  float64 `json:"last"`
}

// add folds one sample into the bin.
func (b *TierBin) add(v float64) {
	if b.Count == 0 {
		*b = TierBin{Start: b.Start, Count: 1, Min: v, Max: v, First: v, Last: v}
		return
	}
	b.Count++
	if v < b.Min {
		b.Min = v
	}
	if v > b.Max {
		b.Max = v
	}
	b.Last = v
}

// series is one downsampled signal at one tier resolution: bins in
// ascending Start order.
type series struct {
	bins []TierBin
}

// add routes a timestamped sample into its bin. Samples arrive in time
// order from the append path; anything that lands before the newest bin
// (clock jitter around a bin boundary) is folded into the newest bin
// rather than opening the past back up.
func (se *series) add(dur, t, v float64) {
	start := math.Floor(t/dur) * dur
	if n := len(se.bins); n > 0 && start <= se.bins[n-1].Start {
		se.bins[n-1].add(v)
		return
	}
	se.bins = append(se.bins, TierBin{Start: start})
	se.bins[len(se.bins)-1].add(v)
}

// trim drops bins that end at or before cutoff — the tier-index side of
// block eviction, so tiers never describe time ranges with no retained
// raw data behind them.
func (se *series) trim(dur, cutoff float64) {
	i := 0
	for i < len(se.bins) && se.bins[i].Start+dur <= cutoff {
		i++
	}
	if i > 0 {
		se.bins = append(se.bins[:0], se.bins[i:]...)
	}
}

// query returns the bins overlapping [from, to).
func (se *series) query(dur, from, to float64) []TierBin {
	lo := sort.Search(len(se.bins), func(i int) bool { return se.bins[i].Start+dur > from })
	hi := sort.Search(len(se.bins), func(i int) bool { return se.bins[i].Start >= to })
	if lo >= hi {
		return nil
	}
	out := make([]TierBin, hi-lo)
	copy(out, se.bins[lo:hi])
	return out
}

// The three series every tier tracks.
const (
	seriesWave = iota // per-packet breathing-waveform observable
	seriesBreath
	seriesHeart
	numSeries
)

// tierSet is one session's full downsample state: numSeries series at
// each configured resolution.
type tierSet struct {
	durs   []float64
	series [][numSeries]series // one entry per tier
}

func newTierSet(durs []float64) *tierSet {
	return &tierSet{durs: durs, series: make([][numSeries]series, len(durs))}
}

func (ts *tierSet) add(which int, t, v float64) {
	for i, dur := range ts.durs {
		ts.series[i][which].add(dur, t, v)
	}
}

func (ts *tierSet) trim(cutoff float64) {
	for i, dur := range ts.durs {
		for w := 0; w < numSeries; w++ {
			ts.series[i][w].trim(dur, cutoff)
		}
	}
}

// lastBreath returns the most recent breathing estimate folded into the
// finest tier.
func (ts *tierSet) lastBreath() (float64, bool) {
	if len(ts.series) == 0 {
		return 0, false
	}
	bins := ts.series[0][seriesBreath].bins
	if len(bins) == 0 {
		return 0, false
	}
	return bins[len(bins)-1].Last, true
}

// TierLabel formats a tier duration the way the query API names it:
// "1s", "10s", "60s", "0.5s".
func TierLabel(dur float64) string { return fmt.Sprintf("%gs", dur) }

// tiers.bin binary format:
//
//	magic "PBTI" | uint16 version | uint8 tierCount |
//	tiers: float64 duration, then numSeries × (uint32 binCount, bins) |
//	bin: float64 start, uint32 count, float64 min, max, first, last
const (
	tierMagic   = "PBTI"
	tierVersion = 1
	// maxTiers bounds the tier count a (possibly corrupt) index file can
	// declare.
	maxTiers = 8
	// tierPreallocBytes bounds how much bin storage readTiers reserves up
	// front on the strength of an untrusted count, mirroring trace.Read.
	tierPreallocBytes = 1 << 20
	binEncodedSize    = 8 + 4 + 4*8
)

// ErrBadTierIndex reports a malformed or truncated tiers.bin.
var ErrBadTierIndex = errors.New("store: bad tier index")

// writeTiers encodes the tier set.
func writeTiers(w io.Writer, ts *tierSet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(tierMagic); err != nil {
		return err
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], tierVersion)
	if _, err := bw.Write(u16[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(len(ts.durs))); err != nil {
		return err
	}
	var buf [8]byte
	writeF64 := func(v float64) error {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, err := bw.Write(buf[:])
		return err
	}
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		_, err := bw.Write(buf[:4])
		return err
	}
	for i, dur := range ts.durs {
		if err := writeF64(dur); err != nil {
			return err
		}
		for w := 0; w < numSeries; w++ {
			bins := ts.series[i][w].bins
			if err := writeU32(uint32(len(bins))); err != nil {
				return err
			}
			for _, b := range bins {
				if err := writeF64(b.Start); err != nil {
					return err
				}
				if err := writeU32(b.Count); err != nil {
					return err
				}
				for _, v := range [4]float64{b.Min, b.Max, b.First, b.Last} {
					if err := writeF64(v); err != nil {
						return err
					}
				}
			}
		}
	}
	return bw.Flush()
}

// readTiers decodes a tier set written by writeTiers. Every declared
// count is treated as untrusted: tier count is hard-bounded and bin
// preallocation is capped by a byte budget, so a corrupt index cannot
// make recovery reserve gigabytes.
func readTiers(r io.Reader) (*tierSet, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(tierMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadTierIndex, err)
	}
	if string(magic) != tierMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadTierIndex, magic)
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, fmt.Errorf("%w: version: %v", ErrBadTierIndex, err)
	}
	if v := binary.LittleEndian.Uint16(u16[:]); v != tierVersion {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrBadTierIndex, v, tierVersion)
	}
	nTiers, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: tier count: %v", ErrBadTierIndex, err)
	}
	if nTiers == 0 || nTiers > maxTiers {
		return nil, fmt.Errorf("%w: %d tiers outside (0, %d]", ErrBadTierIndex, nTiers, maxTiers)
	}
	var buf [8]byte
	readF64 := func() (float64, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	ts := &tierSet{series: make([][numSeries]series, nTiers)}
	lastDur := 0.0
	for i := 0; i < int(nTiers); i++ {
		dur, err := readF64()
		if err != nil {
			return nil, fmt.Errorf("%w: tier %d duration: %v", ErrBadTierIndex, i, err)
		}
		if !(dur > 0) || math.IsInf(dur, 0) || dur <= lastDur {
			return nil, fmt.Errorf("%w: tier durations must ascend and be finite (got %v after %v)",
				ErrBadTierIndex, dur, lastDur)
		}
		lastDur = dur
		ts.durs = append(ts.durs, dur)
		for w := 0; w < numSeries; w++ {
			n, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("%w: tier %d series %d count: %v", ErrBadTierIndex, i, w, err)
			}
			prealloc := int64(n)
			if budget := int64(tierPreallocBytes / binEncodedSize); prealloc > budget {
				prealloc = budget
			}
			bins := make([]TierBin, 0, prealloc)
			lastStart := math.Inf(-1)
			for j := uint32(0); j < n; j++ {
				var b TierBin
				if b.Start, err = readF64(); err != nil {
					return nil, fmt.Errorf("%w: tier %d bin %d: %v", ErrBadTierIndex, i, j, err)
				}
				if b.Count, err = readU32(); err != nil {
					return nil, fmt.Errorf("%w: tier %d bin %d: %v", ErrBadTierIndex, i, j, err)
				}
				for _, f := range [4]*float64{&b.Min, &b.Max, &b.First, &b.Last} {
					if *f, err = readF64(); err != nil {
						return nil, fmt.Errorf("%w: tier %d bin %d: %v", ErrBadTierIndex, i, j, err)
					}
				}
				if math.IsNaN(b.Start) || b.Start <= lastStart {
					return nil, fmt.Errorf("%w: tier %d bin %d start %v not ascending", ErrBadTierIndex, i, j, b.Start)
				}
				lastStart = b.Start
				bins = append(bins, b)
			}
			ts.series[i][w].bins = bins
		}
	}
	// A trailing garbage run means the file was not produced by
	// writeTiers; reject rather than silently ignore.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadTierIndex)
	}
	return ts, nil
}
