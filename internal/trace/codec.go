package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary format:
//
//	magic "PBTR" | uint16 version | float64 rate | float64 carrier |
//	uint16 antennas | uint16 subcarriers | uint32 packet count |
//	packets: float64 time, then antennas×subcarriers×(float64 re, float64 im)
const (
	formatMagic   = "PBTR"
	formatVersion = 1
)

// ErrBadFormat reports a malformed or truncated binary trace.
var ErrBadFormat = errors.New("trace: bad format")

// maxPreallocBytes bounds how much packet storage Read reserves up front
// on the strength of the (untrusted) header count alone.
const maxPreallocBytes = 1 << 20

// Write encodes the trace to w in the PhaseBeat binary format.
func Write(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	hdr := struct {
		Version              uint16
		Rate, Carrier        float64
		Antennas, Subcarrier uint16
		Count                uint32
	}{
		Version:    formatVersion,
		Rate:       t.SampleRate,
		Carrier:    t.CarrierHz,
		Antennas:   uint16(t.NumAntennas),
		Subcarrier: uint16(t.NumSubcarriers),
		Count:      uint32(len(t.Packets)),
	}
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	buf := make([]byte, 8)
	writeF64 := func(v float64) error {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		_, err := bw.Write(buf)
		return err
	}
	for _, p := range t.Packets {
		if err := writeF64(p.Time); err != nil {
			return fmt.Errorf("trace: write packet: %w", err)
		}
		for _, row := range p.CSI {
			for _, c := range row {
				if err := writeF64(real(c)); err != nil {
					return fmt.Errorf("trace: write packet: %w", err)
				}
				if err := writeF64(imag(c)); err != nil {
					return fmt.Errorf("trace: write packet: %w", err)
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	statTracesWritten.Inc()
	statPacketsWritten.Add(uint64(len(t.Packets)))
	return nil
}

// Read decodes a trace previously written with Write.
func Read(r io.Reader) (*Trace, error) {
	t, err := readBinary(r)
	if err != nil {
		statDecodeErrors.Inc()
		return nil, err
	}
	statTracesRead.Inc()
	statPacketsRead.Add(uint64(len(t.Packets)))
	return t, nil
}

func readBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(formatMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadFormat, err)
	}
	if string(magic) != formatMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	var hdr struct {
		Version              uint16
		Rate, Carrier        float64
		Antennas, Subcarrier uint16
		Count                uint32
	}
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	if hdr.Version != formatVersion {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrBadFormat, hdr.Version, formatVersion)
	}
	// Write only ever produces validated traces, so a zero antenna or
	// subcarrier count is corruption (and would make the packet loop read
	// nothing per packet).
	if hdr.Antennas == 0 || hdr.Subcarrier == 0 {
		return nil, fmt.Errorf("%w: %d antennas, %d subcarriers", ErrBadFormat, hdr.Antennas, hdr.Subcarrier)
	}
	// The header count is untrusted: a corrupt or hostile file can claim
	// up to 4 billion packets while carrying none. Pre-allocate only what
	// a modest read-ahead budget covers and let append grow the rest, so
	// memory tracks the bytes actually read, never the claimed count.
	perPacketBytes := 8 + int64(hdr.Antennas)*int64(hdr.Subcarrier)*16
	prealloc := int64(hdr.Count)
	if budget := maxPreallocBytes / perPacketBytes; prealloc > budget {
		prealloc = budget
	}
	t := &Trace{
		SampleRate:     hdr.Rate,
		CarrierHz:      hdr.Carrier,
		NumAntennas:    int(hdr.Antennas),
		NumSubcarriers: int(hdr.Subcarrier),
		Packets:        make([]Packet, 0, prealloc),
	}
	buf := make([]byte, 8)
	readF64 := func() (float64, error) {
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf)), nil
	}
	for i := uint32(0); i < hdr.Count; i++ {
		tm, err := readF64()
		if err != nil {
			return nil, fmt.Errorf("%w: packet %d time: %v", ErrBadFormat, i, err)
		}
		p := Packet{Time: tm, CSI: make([][]complex128, t.NumAntennas)}
		for a := 0; a < t.NumAntennas; a++ {
			row := make([]complex128, t.NumSubcarriers)
			for s := 0; s < t.NumSubcarriers; s++ {
				re, err := readF64()
				if err != nil {
					return nil, fmt.Errorf("%w: packet %d antenna %d: %v", ErrBadFormat, i, a, err)
				}
				im, err := readF64()
				if err != nil {
					return nil, fmt.Errorf("%w: packet %d antenna %d: %v", ErrBadFormat, i, a, err)
				}
				row[s] = complex(re, im)
			}
			p.CSI[a] = row
		}
		t.Packets = append(t.Packets, p)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Writer streams packets to an io.Writer without holding the whole trace in
// memory. The packet count is written on Close by rewriting the header, so
// the underlying writer must also be an io.WriteSeeker; for pure streams
// use Write with a complete Trace instead.
type Writer struct {
	ws      io.WriteSeeker
	meta    Trace
	count   uint32
	started bool
}

// NewWriter creates a streaming trace writer with the given metadata.
func NewWriter(ws io.WriteSeeker, meta Trace) *Writer {
	meta.Packets = nil
	return &Writer{ws: ws, meta: meta}
}

// WritePacket appends one packet.
func (w *Writer) WritePacket(p Packet) error {
	if !w.started {
		w.meta.Packets = nil
		if err := Write(w.ws, &Trace{
			SampleRate:     w.meta.SampleRate,
			NumAntennas:    w.meta.NumAntennas,
			NumSubcarriers: w.meta.NumSubcarriers,
			CarrierHz:      w.meta.CarrierHz,
		}); err != nil {
			return err
		}
		w.started = true
	}
	if len(p.CSI) != w.meta.NumAntennas {
		return fmt.Errorf("%w: packet has %d antennas, want %d", ErrInvalidTrace, len(p.CSI), w.meta.NumAntennas)
	}
	buf := make([]byte, 8, 8)
	writeF64 := func(v float64) error {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		_, err := w.ws.Write(buf)
		return err
	}
	if err := writeF64(p.Time); err != nil {
		return fmt.Errorf("trace: stream packet: %w", err)
	}
	for _, row := range p.CSI {
		if len(row) != w.meta.NumSubcarriers {
			return fmt.Errorf("%w: packet row has %d subcarriers, want %d", ErrInvalidTrace, len(row), w.meta.NumSubcarriers)
		}
		for _, c := range row {
			if err := writeF64(real(c)); err != nil {
				return fmt.Errorf("trace: stream packet: %w", err)
			}
			if err := writeF64(imag(c)); err != nil {
				return fmt.Errorf("trace: stream packet: %w", err)
			}
		}
	}
	w.count++
	statPacketsWritten.Inc()
	return nil
}

// Close patches the packet count into the header.
func (w *Writer) Close() error {
	if !w.started {
		// Write an empty but valid trace.
		if err := Write(w.ws, &Trace{
			SampleRate:     w.meta.SampleRate,
			NumAntennas:    w.meta.NumAntennas,
			NumSubcarriers: w.meta.NumSubcarriers,
			CarrierHz:      w.meta.CarrierHz,
		}); err != nil {
			return err
		}
		return nil
	}
	// Header layout: magic(4) + version(2) + rate(8) + carrier(8) +
	// antennas(2) + subcarriers(2) = 26 bytes before the count.
	const countOffset = 4 + 2 + 8 + 8 + 2 + 2
	if _, err := w.ws.Seek(countOffset, io.SeekStart); err != nil {
		return fmt.Errorf("trace: seek header: %w", err)
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w.count)
	if _, err := w.ws.Write(buf[:]); err != nil {
		return fmt.Errorf("trace: patch count: %w", err)
	}
	if _, err := w.ws.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("trace: seek end: %w", err)
	}
	return nil
}
