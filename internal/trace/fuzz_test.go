package trace

import (
	"bytes"
	"testing"
)

// FuzzReadAuto drives the sniffing decoder — and through it all three
// format readers — with hostile bytes. Any accepted trace must pass
// Validate and survive a binary write/read round trip; everything else
// must be rejected with an error, never a panic or a header-trusting
// allocation (the hostile-count tests bound that separately).
func FuzzReadAuto(f *testing.F) {
	mk := func(n int) *Trace {
		tr := &Trace{SampleRate: 30, NumAntennas: 2, NumSubcarriers: 3, CarrierHz: 5.32e9}
		for i := 0; i < n; i++ {
			p := NewPacket(float64(i)/30, 2, 3)
			for a := range p.CSI {
				for s := range p.CSI[a] {
					p.CSI[a][s] = complex(float64(a+1), float64(s))
				}
			}
			tr.Packets = append(tr.Packets, p)
		}
		return tr
	}
	var bin, gz, js bytes.Buffer
	if err := Write(&bin, mk(3)); err != nil {
		f.Fatal(err)
	}
	if err := WriteCompressed(&gz, mk(2)); err != nil {
		f.Fatal(err)
	}
	if err := WriteJSON(&js, mk(1)); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add(gz.Bytes())
	f.Add(js.Bytes())
	f.Add(hostileHeader(3, 30, 0xFFFFFFFF))
	f.Add([]byte(formatMagic))
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00})
	f.Add([]byte(`{"sample_rate":30}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadAuto(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadAuto accepted a trace that fails Validate: %v", err)
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace does not re-encode: %v", err)
		}
		tr2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if len(tr2.Packets) != len(tr.Packets) {
			t.Fatalf("round trip changed packet count: %d != %d", len(tr2.Packets), len(tr.Packets))
		}
	})
}
