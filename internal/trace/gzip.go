package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// WriteCompressed encodes the trace in the binary format wrapped in gzip.
// CSI traces compress to roughly a third of their binary size, which
// matters for the long captures the sleep-monitoring use case records.
func WriteCompressed(w io.Writer, t *Trace) error {
	zw := gzip.NewWriter(w)
	if err := Write(zw, t); err != nil {
		zw.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trace: gzip close: %w", err)
	}
	return nil
}

// ReadCompressed decodes a trace written with WriteCompressed.
func ReadCompressed(r io.Reader) (*Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: gzip: %v", ErrBadFormat, err)
	}
	defer zr.Close()
	return Read(zr)
}

// ReadAuto sniffs the stream and decodes any of the three formats: gzip-
// wrapped binary (magic 0x1f 0x8b), plain binary ("PBTR") or JSON lines.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	switch {
	case head[0] == 0x1f && head[1] == 0x8b:
		return ReadCompressed(br)
	case string(head) == formatMagic:
		return Read(br)
	default:
		return ReadJSON(br)
	}
}
