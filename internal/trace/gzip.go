package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// WriteCompressed encodes the trace in the binary format wrapped in gzip.
// CSI traces compress to roughly a third of their binary size, which
// matters for the long captures the sleep-monitoring use case records.
func WriteCompressed(w io.Writer, t *Trace) error {
	zw := gzip.NewWriter(w)
	if err := Write(zw, t); err != nil {
		zw.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trace: gzip close: %w", err)
	}
	return nil
}

// ReadCompressed decodes a trace written with WriteCompressed.
func ReadCompressed(r io.Reader) (*Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		statDecodeErrors.Inc()
		return nil, fmt.Errorf("%w: gzip: %v", ErrBadFormat, err)
	}
	defer zr.Close()
	t, err := Read(zr)
	if err != nil {
		return nil, err
	}
	// Read stops after the header's packet count, short of the gzip
	// trailer, so the stream's checksum has not been verified yet. Poorly
	// compressible CSI lands in stored deflate blocks where bit rot decodes
	// without any error — drain to EOF so the CRC check actually runs.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		statDecodeErrors.Inc()
		return nil, fmt.Errorf("%w: gzip trailer: %v", ErrBadFormat, err)
	}
	return t, nil
}

// ReadAuto sniffs the stream and decodes any of the three formats: gzip-
// wrapped binary (magic 0x1f 0x8b), plain binary ("PBTR") or JSON lines.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		statDecodeErrors.Inc()
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	switch {
	case head[0] == 0x1f && head[1] == 0x8b:
		return ReadCompressed(br)
	case string(head) == formatMagic:
		return Read(br)
	default:
		return ReadJSON(br)
	}
}
