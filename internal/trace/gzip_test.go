package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func compressedFixture(t *testing.T) ([]byte, *Trace) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	tr := randomTrace(rng, 40, 2, 30)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tr
}

// Truncated gzip streams must surface as ErrBadFormat from both the
// explicit and the sniffing entry points, at every truncation depth: inside
// the gzip header, inside the deflate stream, and just short of the
// trailing checksum.
func TestReadCompressedTruncated(t *testing.T) {
	data, _ := compressedFixture(t)
	for _, n := range []int{4, len(data) / 2, len(data) - 4} {
		if _, err := ReadCompressed(bytes.NewReader(data[:n])); !errors.Is(err, ErrBadFormat) {
			t.Errorf("ReadCompressed at %d/%d bytes: want ErrBadFormat, got %v", n, len(data), err)
		}
		if _, err := ReadAuto(bytes.NewReader(data[:n])); !errors.Is(err, ErrBadFormat) {
			t.Errorf("ReadAuto at %d/%d bytes: want ErrBadFormat, got %v", n, len(data), err)
		}
	}
}

// Bit rot inside the deflate stream must never decode silently: either the
// decompressor or the trace checksum path reports ErrBadFormat.
func TestReadCompressedCorrupt(t *testing.T) {
	data, _ := compressedFixture(t)
	for _, at := range []int{16, len(data) / 2, len(data) - 6} {
		corrupt := append([]byte(nil), data...)
		corrupt[at] ^= 0xFF
		if _, err := ReadAuto(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("byte flip at %d decoded without error", at)
		} else if !errors.Is(err, ErrBadFormat) {
			t.Errorf("byte flip at %d: want ErrBadFormat, got %v", at, err)
		}
	}
}

func TestReadCompressedNotGzip(t *testing.T) {
	if _, err := ReadCompressed(bytes.NewReader([]byte("PBTR but not gzip"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat, got %v", err)
	}
}

// ReadAuto still routes a gzip stream whose payload is valid to the binary
// decoder (round-trip through the sniffing path).
func TestReadAutoCompressedRoundTrip(t *testing.T) {
	data, tr := compressedFixture(t)
	got, err := ReadAuto(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Fatal("sniffed gzip round trip differs")
	}
}
