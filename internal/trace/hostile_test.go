package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// hostileHeader builds a syntactically valid binary header with arbitrary
// field values and no payload.
func hostileHeader(antennas, subcarriers uint16, count uint32) []byte {
	var buf bytes.Buffer
	buf.WriteString(formatMagic)
	binary.Write(&buf, binary.LittleEndian, struct {
		Version              uint16
		Rate, Carrier        float64
		Antennas, Subcarrier uint16
		Count                uint32
	}{
		Version:    formatVersion,
		Rate:       400,
		Carrier:    5.32e9,
		Antennas:   antennas,
		Subcarrier: subcarriers,
		Count:      count,
	})
	return buf.Bytes()
}

// TestReadRejectsHostileCount feeds Read headers that claim billions of
// packets with no payload behind them. The decode must fail fast with
// ErrBadFormat and must not pre-allocate storage proportional to the
// claimed count.
func TestReadRejectsHostileCount(t *testing.T) {
	cases := []struct {
		name                 string
		antennas, subcarrier uint16
		count                uint32
	}{
		{"max count small packets", 3, 30, 0xFFFFFFFF},
		{"max count max shape", 0xFFFF, 0xFFFF, 0xFFFFFFFF},
		{"plausible count no payload", 3, 30, 1 << 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := hostileHeader(tc.antennas, tc.subcarrier, tc.count)
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			_, err := Read(bytes.NewReader(data))
			runtime.ReadMemStats(&after)
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("want ErrBadFormat, got %v", err)
			}
			// The claimed payloads run to gigabytes; a decode that trusts the
			// header allocates the packet slice up front. Allow generous
			// slack for the runtime itself.
			if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
				t.Fatalf("hostile header drove %d MiB of allocation", grew>>20)
			}
		})
	}
}

func TestReadRejectsZeroShape(t *testing.T) {
	if _, err := Read(bytes.NewReader(hostileHeader(0, 30, 1))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("zero antennas: want ErrBadFormat, got %v", err)
	}
	if _, err := Read(bytes.NewReader(hostileHeader(3, 0, 1))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("zero subcarriers: want ErrBadFormat, got %v", err)
	}
}

// TestWriterCloseBackpatchesCount pins the streaming writer's header
// protocol: the count field holds zero until Close seeks back and patches
// the real packet count in.
func TestWriterCloseBackpatchesCount(t *testing.T) {
	// magic(4) + version(2) + rate(8) + carrier(8) + antennas(2) +
	// subcarriers(2); the count field follows.
	const countOffset = 26
	path := filepath.Join(t.TempDir(), "patch.pbtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(77))
	tr := randomTrace(rng, 5, 2, 4)
	w := NewWriter(f, Trace{
		SampleRate:     tr.SampleRate,
		NumAntennas:    tr.NumAntennas,
		NumSubcarriers: tr.NumSubcarriers,
		CarrierHz:      tr.CarrierHz,
	})
	for _, p := range tr.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}

	countAt := func() uint32 {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) < countOffset+4 {
			t.Fatalf("file only %d bytes", len(raw))
		}
		return binary.LittleEndian.Uint32(raw[countOffset:])
	}

	if got := countAt(); got != 0 {
		t.Fatalf("count before Close = %d, want placeholder 0", got)
	}
	// A reader hitting the file mid-stream sees a consistent empty trace,
	// not a truncation error.
	if got, err := Read(bytes.NewReader(mustReadFile(t, path))); err != nil || got.Len() != 0 {
		t.Fatalf("mid-stream read: %d packets, err %v; want 0 packets", got.Len(), err)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := countAt(); got != uint32(len(tr.Packets)) {
		t.Fatalf("count after Close = %d, want %d", got, len(tr.Packets))
	}
	got, err := Read(bytes.NewReader(mustReadFile(t, path)))
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Fatal("patched trace differs from original")
	}
	// Close leaves the cursor at the end so callers can keep appending
	// non-trace data (or re-Close harmlessly).
	if pos, err := f.Seek(0, 1); err != nil || pos != int64(len(mustReadFile(t, path))) {
		t.Fatalf("cursor after Close at %d, want end of file", pos)
	}
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
