package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// jsonHeader is the first line of a JSON-lines trace.
type jsonHeader struct {
	Format         string  `json:"format"`
	Version        int     `json:"version"`
	SampleRateHz   float64 `json:"sampleRateHz"`
	CarrierHz      float64 `json:"carrierHz"`
	NumAntennas    int     `json:"numAntennas"`
	NumSubcarriers int     `json:"numSubcarriers"`
}

// jsonPacket is one subsequent line: CSI as [antenna][subcarrier][2]
// (re, im) — JSON has no complex type.
type jsonPacket struct {
	TimeS float64        `json:"timeS"`
	CSI   [][][2]float64 `json:"csi"`
}

const jsonFormatName = "phasebeat-csi"

// WriteJSON encodes the trace as JSON lines: a header object followed by
// one packet object per line. It is the interoperability format (easy to
// consume from Python/Matlab); the binary codec is ~3× smaller.
func WriteJSON(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := jsonHeader{
		Format:         jsonFormatName,
		Version:        formatVersion,
		SampleRateHz:   t.SampleRate,
		CarrierHz:      t.CarrierHz,
		NumAntennas:    t.NumAntennas,
		NumSubcarriers: t.NumSubcarriers,
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for i, p := range t.Packets {
		jp := jsonPacket{TimeS: p.Time, CSI: make([][][2]float64, len(p.CSI))}
		for a, row := range p.CSI {
			cells := make([][2]float64, len(row))
			for s, c := range row {
				cells[s] = [2]float64{real(c), imag(c)}
			}
			jp.CSI[a] = cells
		}
		if err := enc.Encode(jp); err != nil {
			return fmt.Errorf("trace: encode packet %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	statTracesWritten.Inc()
	statPacketsWritten.Add(uint64(len(t.Packets)))
	return nil
}

// ReadJSON decodes a trace written with WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	t, err := readJSON(r)
	if err != nil {
		statDecodeErrors.Inc()
		return nil, err
	}
	statTracesRead.Inc()
	statPacketsRead.Add(uint64(len(t.Packets)))
	return t, nil
}

func readJSON(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr jsonHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	if hdr.Format != jsonFormatName {
		return nil, fmt.Errorf("%w: format %q", ErrBadFormat, hdr.Format)
	}
	if hdr.Version != formatVersion {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrBadFormat, hdr.Version, formatVersion)
	}
	t := &Trace{
		SampleRate:     hdr.SampleRateHz,
		CarrierHz:      hdr.CarrierHz,
		NumAntennas:    hdr.NumAntennas,
		NumSubcarriers: hdr.NumSubcarriers,
	}
	for {
		var jp jsonPacket
		if err := dec.Decode(&jp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("%w: packet %d: %v", ErrBadFormat, len(t.Packets), err)
		}
		p := Packet{Time: jp.TimeS, CSI: make([][]complex128, len(jp.CSI))}
		for a, row := range jp.CSI {
			cells := make([]complex128, len(row))
			for s, c := range row {
				cells[s] = complex(c[0], c[1])
			}
			p.CSI[a] = cells
		}
		t.Packets = append(t.Packets, p)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
