package trace

import "phasebeat/internal/metrics"

// Codec telemetry: package-level counters incremented by every decode
// and encode, in whichever format (ReadAuto and the gzip wrappers route
// through Read/ReadJSON, so each logical trace is counted once). The
// counters are plain atomics and always on — one add per trace plus one
// per streamed packet, negligible against the float traffic of either
// codec — and are invisible until RegisterMetrics exports them into a
// registry.
var (
	statTracesRead     = metrics.NewCounter()
	statTracesWritten  = metrics.NewCounter()
	statPacketsRead    = metrics.NewCounter()
	statPacketsWritten = metrics.NewCounter()
	statDecodeErrors   = metrics.NewCounter()
)

// RegisterMetrics exports the codec counters into r under the "trace."
// namespace:
//
//	trace.reads            traces decoded successfully (any format)
//	trace.writes           traces encoded successfully (any format)
//	trace.packets.read     packets carried by decoded traces
//	trace.packets.written  packets encoded, batch or streamed
//	trace.decode_errors    failed decodes (bad magic, truncation, ...)
//
// The counters are process-global: registering them in two registries
// exports the same underlying values. A nil registry is a no-op.
func RegisterMetrics(r *metrics.Registry) {
	r.Register("trace.reads", statTracesRead)
	r.Register("trace.writes", statTracesWritten)
	r.Register("trace.packets.read", statPacketsRead)
	r.Register("trace.packets.written", statPacketsWritten)
	r.Register("trace.decode_errors", statDecodeErrors)
}
