package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"phasebeat/internal/metrics"
)

// TestCodecMetrics pins the codec counters: reads, writes, packet
// counts and decode errors all move with codec traffic, and
// RegisterMetrics exposes them under the "trace." namespace. The
// counters are process-global, so the test asserts deltas.
func TestCodecMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	RegisterMetrics(reg)

	reads0 := statTracesRead.Value()
	writes0 := statTracesWritten.Value()
	pktsR0 := statPacketsRead.Value()
	pktsW0 := statPacketsWritten.Value()
	errs0 := statDecodeErrors.Value()

	tr := randomTrace(rand.New(rand.NewSource(1)), 5, 3, 30)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("want decode error")
	}

	if d := statTracesWritten.Value() - writes0; d != 1 {
		t.Errorf("traces written delta = %d, want 1", d)
	}
	if d := statTracesRead.Value() - reads0; d != 1 {
		t.Errorf("traces read delta = %d, want 1", d)
	}
	if d := statPacketsWritten.Value() - pktsW0; d != 5 {
		t.Errorf("packets written delta = %d, want 5", d)
	}
	if d := statPacketsRead.Value() - pktsR0; d != 5 {
		t.Errorf("packets read delta = %d, want 5", d)
	}
	if d := statDecodeErrors.Value() - errs0; d != 1 {
		t.Errorf("decode errors delta = %d, want 1", d)
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"trace.reads", "trace.writes", "trace.packets.read",
		"trace.packets.written", "trace.decode_errors",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("metric %q not registered", name)
		}
	}
}
