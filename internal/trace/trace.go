// Package trace defines the CSI trace container shared by the simulator,
// the PhaseBeat pipeline and the CLI tools, along with a binary codec and a
// streaming reader/writer. It plays the role of the Intel 5300 CSI Tool's
// .dat capture files in the original system.
package trace

import (
	"errors"
	"fmt"
)

// ErrInvalidTrace reports a structurally inconsistent trace.
var ErrInvalidTrace = errors.New("trace: invalid trace")

// Packet is one CSI measurement: the complex channel response of every
// (antenna, subcarrier) pair at a point in time.
type Packet struct {
	// Time is the capture timestamp in seconds from the start of the trace.
	Time float64
	// CSI is indexed [antenna][subcarrier].
	CSI [][]complex128
}

// NewPacket returns a packet whose antenna rows are carved from one flat
// backing slab: two allocations total regardless of the antenna count, and
// rows that are adjacent in memory — the layout the columnar ingest path
// transposes from. Rows are capacity-capped so an append to one cannot
// bleed into its neighbor.
func NewPacket(time float64, antennas, subcarriers int) Packet {
	rows := make([][]complex128, antennas)
	slab := make([]complex128, antennas*subcarriers)
	for a := range rows {
		rows[a] = slab[a*subcarriers : (a+1)*subcarriers : (a+1)*subcarriers]
	}
	return Packet{Time: time, CSI: rows}
}

// Clone returns a deep copy of the packet. The copy's rows share one flat
// backing slab (cumulative offsets handle ragged inputs), so cloning costs
// two allocations instead of one per antenna.
func (p Packet) Clone() Packet {
	total := 0
	for _, row := range p.CSI {
		total += len(row)
	}
	out := Packet{Time: p.Time, CSI: make([][]complex128, len(p.CSI))}
	slab := make([]complex128, total)
	off := 0
	for a, row := range p.CSI {
		dst := slab[off : off+len(row) : off+len(row)]
		copy(dst, row)
		out.CSI[a] = dst
		off += len(row)
	}
	return out
}

// Trace is a sequence of CSI packets captured at a nominal rate.
type Trace struct {
	// SampleRate is the nominal packet rate in Hz.
	SampleRate float64
	// NumAntennas is the receive antenna count.
	NumAntennas int
	// NumSubcarriers is the per-antenna subcarrier count (30 for the
	// Intel 5300).
	NumSubcarriers int
	// CarrierHz is the RF carrier frequency (metadata).
	CarrierHz float64
	// Packets holds the measurements in time order.
	Packets []Packet
}

// Validate checks the structural invariants of the trace.
func (t *Trace) Validate() error {
	if t.SampleRate <= 0 {
		return fmt.Errorf("%w: sample rate %v", ErrInvalidTrace, t.SampleRate)
	}
	if t.NumAntennas < 1 || t.NumSubcarriers < 1 {
		return fmt.Errorf("%w: %d antennas, %d subcarriers", ErrInvalidTrace, t.NumAntennas, t.NumSubcarriers)
	}
	last := -1.0
	for i, p := range t.Packets {
		if len(p.CSI) != t.NumAntennas {
			return fmt.Errorf("%w: packet %d has %d antennas, want %d", ErrInvalidTrace, i, len(p.CSI), t.NumAntennas)
		}
		for a, row := range p.CSI {
			if len(row) != t.NumSubcarriers {
				return fmt.Errorf("%w: packet %d antenna %d has %d subcarriers, want %d",
					ErrInvalidTrace, i, a, len(row), t.NumSubcarriers)
			}
		}
		if p.Time < last {
			return fmt.Errorf("%w: packet %d time %v before %v", ErrInvalidTrace, i, p.Time, last)
		}
		last = p.Time
	}
	return nil
}

// Duration returns the time span covered by the trace in seconds.
func (t *Trace) Duration() float64 {
	if len(t.Packets) == 0 {
		return 0
	}
	return t.Packets[len(t.Packets)-1].Time - t.Packets[0].Time
}

// Len returns the packet count.
func (t *Trace) Len() int { return len(t.Packets) }

// Slice returns a shallow sub-trace covering packets [from, to).
func (t *Trace) Slice(from, to int) (*Trace, error) {
	if from < 0 || to > len(t.Packets) || from > to {
		return nil, fmt.Errorf("%w: slice [%d, %d) of %d packets", ErrInvalidTrace, from, to, len(t.Packets))
	}
	return &Trace{
		SampleRate:     t.SampleRate,
		NumAntennas:    t.NumAntennas,
		NumSubcarriers: t.NumSubcarriers,
		CarrierHz:      t.CarrierHz,
		Packets:        t.Packets[from:to],
	}, nil
}
