package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func randomTrace(rng *rand.Rand, packets, antennas, subcarriers int) *Trace {
	t := &Trace{
		SampleRate:     400,
		NumAntennas:    antennas,
		NumSubcarriers: subcarriers,
		CarrierHz:      5.32e9,
		Packets:        make([]Packet, 0, packets),
	}
	for i := 0; i < packets; i++ {
		p := Packet{Time: float64(i) / 400, CSI: make([][]complex128, antennas)}
		for a := 0; a < antennas; a++ {
			row := make([]complex128, subcarriers)
			for s := range row {
				row[s] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			p.CSI[a] = row
		}
		t.Packets = append(t.Packets, p)
	}
	return t
}

func tracesEqual(a, b *Trace) bool {
	if a.SampleRate != b.SampleRate || a.NumAntennas != b.NumAntennas ||
		a.NumSubcarriers != b.NumSubcarriers || a.CarrierHz != b.CarrierHz ||
		len(a.Packets) != len(b.Packets) {
		return false
	}
	for i := range a.Packets {
		if a.Packets[i].Time != b.Packets[i].Time {
			return false
		}
		for ant := range a.Packets[i].CSI {
			for s := range a.Packets[i].CSI[ant] {
				if a.Packets[i].CSI[ant][s] != b.Packets[i].CSI[ant][s] {
					return false
				}
			}
		}
	}
	return true
}

func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng, 5, 2, 30)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := randomTrace(rng, 5, 2, 30)
	bad.Packets[2].CSI = bad.Packets[2].CSI[:1]
	if err := bad.Validate(); !errors.Is(err, ErrInvalidTrace) {
		t.Errorf("want ErrInvalidTrace, got %v", err)
	}
	outOfOrder := randomTrace(rng, 5, 2, 30)
	outOfOrder.Packets[3].Time = 0.0001
	if err := outOfOrder.Validate(); !errors.Is(err, ErrInvalidTrace) {
		t.Errorf("want ErrInvalidTrace for time regression, got %v", err)
	}
	zeroRate := randomTrace(rng, 1, 1, 1)
	zeroRate.SampleRate = 0
	if err := zeroRate.Validate(); !errors.Is(err, ErrInvalidTrace) {
		t.Errorf("want ErrInvalidTrace for zero rate, got %v", err)
	}
}

func TestDurationAndSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := randomTrace(rng, 400, 2, 4)
	if d := tr.Duration(); d <= 0.99 || d >= 1.0 {
		t.Errorf("Duration = %v, want ~0.9975", d)
	}
	sub, err := tr.Slice(100, 200)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if sub.Len() != 100 || sub.Packets[0].Time != tr.Packets[100].Time {
		t.Errorf("bad slice: len=%d", sub.Len())
	}
	if _, err := tr.Slice(-1, 5); err == nil {
		t.Error("want error for negative start")
	}
	if _, err := tr.Slice(10, 5); err == nil {
		t.Error("want error for inverted range")
	}
	var empty Trace
	if empty.Duration() != 0 {
		t.Error("empty trace duration should be 0")
	}
}

func TestPacketClone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(rng, 1, 2, 3)
	c := tr.Packets[0].Clone()
	c.CSI[0][0] = complex(99, 99)
	if tr.Packets[0].CSI[0][0] == complex(99, 99) {
		t.Error("Clone shares backing storage")
	}
	// Rows come from one flat slab but must not bleed into each other: an
	// append that exceeds a row's length has to reallocate, not overwrite
	// the next row.
	row0 := append(c.CSI[0], complex(7, 7))
	_ = row0
	if c.CSI[1][0] == complex(7, 7) {
		t.Error("append to row 0 overwrote row 1 in the shared slab")
	}
}

func TestPacketCloneRagged(t *testing.T) {
	// Clone must survive ragged packets (constructible by hand even though
	// Validate rejects them in traces): cumulative offsets, exact lengths.
	p := Packet{Time: 1.5, CSI: [][]complex128{
		{1, 2, 3},
		{4},
		{},
		{5, 6},
	}}
	c := p.Clone()
	if c.Time != p.Time {
		t.Errorf("Time = %v, want %v", c.Time, p.Time)
	}
	if len(c.CSI) != len(p.CSI) {
		t.Fatalf("antenna count = %d, want %d", len(c.CSI), len(p.CSI))
	}
	for a, row := range p.CSI {
		if len(c.CSI[a]) != len(row) {
			t.Fatalf("antenna %d: len = %d, want %d", a, len(c.CSI[a]), len(row))
		}
		for i, v := range row {
			if c.CSI[a][i] != v {
				t.Errorf("antenna %d sample %d: got %v, want %v", a, i, c.CSI[a][i], v)
			}
		}
	}
}

func TestNewPacketLayout(t *testing.T) {
	p := NewPacket(2.5, 3, 4)
	if p.Time != 2.5 {
		t.Errorf("Time = %v, want 2.5", p.Time)
	}
	if len(p.CSI) != 3 {
		t.Fatalf("antennas = %d, want 3", len(p.CSI))
	}
	for a, row := range p.CSI {
		if len(row) != 4 {
			t.Fatalf("antenna %d subcarriers = %d, want 4", a, len(row))
		}
		if cap(row) != 4 {
			t.Errorf("antenna %d row cap = %d, want 4 (capped against bleed)", a, cap(row))
		}
	}
	// Writes to one row must not show up in its neighbors, and an append
	// past a row's capacity must reallocate rather than clobber the next
	// row of the shared slab.
	p.CSI[1][0] = complex(9, 9)
	if p.CSI[0][3] == complex(9, 9) || p.CSI[2][0] == complex(9, 9) {
		t.Error("rows alias each other")
	}
	_ = append(p.CSI[0], complex(7, 7))
	if p.CSI[1][0] != complex(9, 9) {
		t.Error("append to row 0 overwrote row 1 in the shared slab")
	}
}

// Property: binary codec round-trips arbitrary traces exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, r.Intn(20), 1+r.Intn(3), 1+r.Intn(30))
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return tracesEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat, got %v", err)
	}
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat for empty, got %v", err)
	}
	// Truncated valid prefix.
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 3, 2, 4)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Read(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat for truncation, got %v", err)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	bad := &Trace{SampleRate: -1, NumAntennas: 1, NumSubcarriers: 1}
	if err := Write(&buf, bad); err == nil {
		t.Error("want error for invalid trace")
	}
}

func TestStreamingWriter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.pbtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	tr := randomTrace(rng, 7, 2, 5)
	w := NewWriter(f, Trace{
		SampleRate:     tr.SampleRate,
		NumAntennas:    tr.NumAntennas,
		NumSubcarriers: tr.NumSubcarriers,
		CarrierHz:      tr.CarrierHz,
	})
	for _, p := range tr.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := Read(rf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Error("streamed trace differs from original")
	}
}

func TestStreamingWriterEmptyClose(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "empty.pbtr"))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, Trace{SampleRate: 400, NumAntennas: 2, NumSubcarriers: 30})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Read(f)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("empty stream has %d packets", got.Len())
	}
	f.Close()
}

func TestStreamingWriterRejectsBadPacket(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "bad.pbtr"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewWriter(f, Trace{SampleRate: 400, NumAntennas: 2, NumSubcarriers: 3})
	bad := Packet{Time: 0, CSI: [][]complex128{{1, 2, 3}}} // one antenna only
	if err := w.WritePacket(bad); !errors.Is(err, ErrInvalidTrace) {
		t.Errorf("want ErrInvalidTrace, got %v", err)
	}
}

// Property: the JSON codec round-trips arbitrary traces exactly (float64
// survives encoding/json in Go).
func TestJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, r.Intn(8), 1+r.Intn(3), 1+r.Intn(10))
		var buf bytes.Buffer
		if err := WriteJSON(&buf, tr); err != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		return tracesEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat, got %v", err)
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"format":"other","version":1}`))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat for wrong format name, got %v", err)
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"format":"phasebeat-csi","version":99}`))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat for wrong version, got %v", err)
	}
	// Truncated packet line.
	rng := rand.New(rand.NewSource(15))
	tr := randomTrace(rng, 2, 1, 3)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadJSON(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat for truncation, got %v", err)
	}
}

func TestWriteJSONRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	bad := &Trace{SampleRate: 0, NumAntennas: 1, NumSubcarriers: 1}
	if err := WriteJSON(&buf, bad); err == nil {
		t.Error("want error for invalid trace")
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	tr := randomTrace(rng, 50, 2, 30)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		t.Fatalf("WriteCompressed: %v", err)
	}
	var raw bytes.Buffer
	if err := Write(&raw, tr); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= raw.Len() {
		t.Errorf("gzip did not shrink: %d vs %d bytes", buf.Len(), raw.Len())
	}
	got, err := ReadCompressed(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCompressed: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Error("compressed round trip mismatch")
	}
}

func TestReadAutoDetectsAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := randomTrace(rng, 5, 2, 6)
	encoders := map[string]func(*bytes.Buffer) error{
		"binary": func(b *bytes.Buffer) error { return Write(b, tr) },
		"json":   func(b *bytes.Buffer) error { return WriteJSON(b, tr) },
		"gzip":   func(b *bytes.Buffer) error { return WriteCompressed(b, tr) },
	}
	for name, enc := range encoders {
		var buf bytes.Buffer
		if err := enc(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadAuto(&buf)
		if err != nil {
			t.Fatalf("ReadAuto(%s): %v", name, err)
		}
		if !tracesEqual(tr, got) {
			t.Errorf("ReadAuto(%s) mismatch", name)
		}
	}
	if _, err := ReadAuto(bytes.NewReader([]byte("?!"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat for garbage, got %v", err)
	}
	if _, err := ReadCompressed(bytes.NewReader([]byte("nope"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat for non-gzip, got %v", err)
	}
}
