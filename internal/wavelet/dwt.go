package wavelet

import (
	"fmt"
	"math"
)

// ExtensionMode selects how signals are extended at their boundaries before
// filtering.
type ExtensionMode int

const (
	// ModeSymmetric mirrors the signal with half-sample symmetry
	// (… x1 x0 | x0 x1 …). This is the default, matching MATLAB's
	// dwtmode('sym') used by the original PhaseBeat implementation.
	ModeSymmetric ExtensionMode = iota + 1
	// ModeZero pads with zeros.
	ModeZero
	// ModePeriodic wraps the signal around.
	ModePeriodic
)

// String implements fmt.Stringer.
func (m ExtensionMode) String() string {
	switch m {
	case ModeSymmetric:
		return "symmetric"
	case ModeZero:
		return "zero"
	case ModePeriodic:
		return "periodic"
	default:
		return fmt.Sprintf("ExtensionMode(%d)", int(m))
	}
}

// extend pads x with pad samples on each side according to mode.
func extend(x []float64, pad int, mode ExtensionMode) []float64 {
	n := len(x)
	out := make([]float64, 0, n+2*pad)
	idx := func(i int) float64 {
		switch mode {
		case ModeZero:
			if i < 0 || i >= n {
				return 0
			}
			return x[i]
		case ModePeriodic:
			i %= n
			if i < 0 {
				i += n
			}
			return x[i]
		default: // ModeSymmetric
			if n == 1 {
				return x[0]
			}
			period := 2 * n
			i %= period
			if i < 0 {
				i += period
			}
			if i >= n {
				i = period - 1 - i
			}
			return x[i]
		}
	}
	for i := -pad; i < n+pad; i++ {
		out = append(out, idx(i))
	}
	return out
}

// DWT performs one analysis step, returning the approximation and detail
// coefficient vectors, each of length floor((len(x)+L-1)/2).
func DWT(x []float64, w *Wavelet, mode ExtensionMode) (approx, detail []float64) {
	l := w.Len()
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	ext := extend(x, l-1, mode)
	nc := (n + l - 1) / 2
	approx = make([]float64, nc)
	detail = make([]float64, nc)
	// conv(ext, f)[t] = Σ_j ext[t-j] f[j]; we sample the valid region at
	// t = l-1 + 2k + 1.
	for k := 0; k < nc; k++ {
		t := l + 2*k // = (l-1) + (2k+1)
		var sa, sd float64
		for j := 0; j < l; j++ {
			v := ext[t-j]
			sa += v * w.DecLo[j]
			sd += v * w.DecHi[j]
		}
		approx[k] = sa
		detail[k] = sd
	}
	return approx, detail
}

// IDWT performs one synthesis step, reconstructing a signal of length n
// from approximation and detail coefficients produced by DWT.
func IDWT(approx, detail []float64, w *Wavelet, n int) ([]float64, error) {
	la := len(approx)
	if la != len(detail) {
		return nil, fmt.Errorf("wavelet: coefficient lengths differ: %d vs %d", la, len(detail))
	}
	if la == 0 {
		return nil, fmt.Errorf("wavelet: empty coefficients")
	}
	l := w.Len()
	full := 2*la - 1 + l - 1 // length of upsampled-convolved signal
	if n > full {
		return nil, fmt.Errorf("wavelet: cannot reconstruct %d samples from %d coefficients", n, la)
	}
	s := make([]float64, full)
	for k := 0; k < la; k++ {
		pos := 2 * k
		av, dv := approx[k], detail[k]
		for j := 0; j < l; j++ {
			s[pos+j] += av*w.RecLo[j] + dv*w.RecHi[j]
		}
	}
	start := (full - n) / 2
	out := make([]float64, n)
	copy(out, s[start:start+n])
	return out, nil
}

// Decomposition is the result of a multi-level DWT.
type Decomposition struct {
	// Approx is the level-L approximation coefficient vector α_L.
	Approx []float64
	// Details holds the detail coefficient vectors; Details[0] is the
	// finest level β_1 (highest frequencies) and Details[L-1] is β_L.
	Details [][]float64
	// Lengths records the input length at each level (Lengths[0] is the
	// original signal length), needed for exact reconstruction.
	Lengths []int

	wavelet *Wavelet
	mode    ExtensionMode
}

// Levels returns the number of decomposition levels L.
func (d *Decomposition) Levels() int { return len(d.Details) }

// MaxLevel returns the deepest useful decomposition level for a signal of
// length n with filter length l (pywt's dwt_max_level).
func MaxLevel(n, l int) int {
	if l < 2 || n < l {
		return 0
	}
	return int(math.Log2(float64(n) / float64(l-1)))
}

// Wavedec performs a level-`levels` wavelet decomposition of x.
func Wavedec(x []float64, w *Wavelet, mode ExtensionMode, levels int) (*Decomposition, error) {
	if levels < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadLevel, levels)
	}
	if maxL := MaxLevel(len(x), w.Len()); levels > maxL {
		return nil, fmt.Errorf("%w: %d exceeds max %d for %d samples with %s",
			ErrBadLevel, levels, maxL, len(x), w.Name)
	}
	d := &Decomposition{
		Details: make([][]float64, 0, levels),
		Lengths: make([]int, 0, levels),
		wavelet: w,
		mode:    mode,
	}
	cur := x
	for lev := 0; lev < levels; lev++ {
		d.Lengths = append(d.Lengths, len(cur))
		a, det := DWT(cur, w, mode)
		d.Details = append(d.Details, det)
		cur = a
	}
	d.Approx = cur
	return d, nil
}

// Waverec reconstructs the original signal from all coefficients.
func (d *Decomposition) Waverec() ([]float64, error) {
	return d.reconstruct(true, nil)
}

// ReconstructApprox reconstructs a full-rate signal from the level-L
// approximation only (all detail bands zeroed) — PhaseBeat's denoised
// breathing signal.
func (d *Decomposition) ReconstructApprox() ([]float64, error) {
	keep := make([]bool, d.Levels())
	return d.reconstruct(true, keep)
}

// ReconstructDetails reconstructs a full-rate signal from the selected
// detail levels only (1-based: level 1 is the finest β_1). PhaseBeat's
// heart signal is ReconstructDetails(L-1, L).
func (d *Decomposition) ReconstructDetails(levels ...int) ([]float64, error) {
	keep := make([]bool, d.Levels())
	for _, lev := range levels {
		if lev < 1 || lev > d.Levels() {
			return nil, fmt.Errorf("%w: detail level %d of %d", ErrBadLevel, lev, d.Levels())
		}
		keep[lev-1] = true
	}
	return d.reconstruct(false, keep)
}

// reconstruct runs the synthesis bank bottom-up. keepApprox selects the
// approximation; keepDetails selects detail levels (nil keeps all).
func (d *Decomposition) reconstruct(keepApprox bool, keepDetails []bool) ([]float64, error) {
	levels := d.Levels()
	cur := make([]float64, len(d.Approx))
	if keepApprox {
		copy(cur, d.Approx)
	}
	for lev := levels - 1; lev >= 0; lev-- {
		det := d.Details[lev]
		if keepDetails != nil && !keepDetails[lev] {
			det = make([]float64, len(d.Details[lev]))
		}
		out, err := IDWT(cur, det, d.wavelet, d.Lengths[lev])
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", lev+1, err)
		}
		cur = out
	}
	return cur, nil
}

// BandFrequencies returns the nominal frequency range [lo, hi] in Hz
// covered by a coefficient band for data sampled at fs: the level-L
// approximation covers [0, fs/2^(L+1)] and the level-l detail covers
// [fs/2^(l+1), fs/2^l]. With fs = 20 Hz and L = 4 this reproduces the
// paper's α4 ∈ [0, 0.625] Hz and β3+β4 ∈ [0.625, 2.5] Hz.
func BandFrequencies(fs float64, level int, isApprox bool) (lo, hi float64) {
	if isApprox {
		return 0, fs / math.Pow(2, float64(level+1))
	}
	return fs / math.Pow(2, float64(level+1)), fs / math.Pow(2, float64(level))
}
