package wavelet

import (
	"fmt"
)

// StreamDec is a streaming multi-level DWT analyzer: samples are pushed
// one at a time and each level emits its interior coefficients as soon as
// their full input support exists, cascading approximations into the next
// level. Per level only the filter-length tail of the input stream is
// retained (the boundary state), so a stride that appends k samples costs
// O(k·L·levels) instead of re-transforming the whole window — the DWT
// analogue of the stride engine's margin-only re-smoothing.
//
// Indexing is absolute: the first pushed sample has index 0 and level-l
// coefficient k is the same coefficient a batch Wavedec of the whole
// stream would place at index k. Boundary coefficients (those whose batch
// support crosses the signal edge and therefore depends on the extension
// mode) are never materialized; the first emitted coefficient per level is
// FirstCoef. Reconstruct synthesizes band-selective signal values over an
// interior window, matching Decomposition.ReconstructApprox /
// ReconstructDetails away from the batch edges.
//
// Not safe for concurrent use. The zero value is not usable; construct
// with NewStreamDec.
type StreamDec struct {
	w      *Wavelet
	levels int
	span   int // max Reconstruct window width

	lev []decLevel

	// scratch[l] holds intermediate approx values for level l during
	// Reconstruct's recursion.
	scratch [][]float64
}

// decLevel is one analysis level's streaming state.
type decLevel struct {
	in      []float64 // last len(in) inputs, indexed absolutely mod cap
	inFirst int       // absolute index of the first input this level sees
	inNext  int       // next absolute input index expected
	firstK  int       // absolute index of the first interior coefficient
	nextK   int       // next coefficient to emit
	approx  []float64 // coefficient rings, indexed absolutely mod cap
	detail  []float64
}

// NewStreamDec builds a streaming analyzer for `levels` decomposition
// levels of wavelet w. maxSpan bounds the width of any Reconstruct window
// and sizes the retained coefficient history.
func NewStreamDec(w *Wavelet, levels, maxSpan int) (*StreamDec, error) {
	if levels < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadLevel, levels)
	}
	if w.Len() < 2 {
		return nil, fmt.Errorf("wavelet: filter too short for streaming")
	}
	if maxSpan < 1 {
		return nil, fmt.Errorf("wavelet: reconstruction span must be >= 1, got %d", maxSpan)
	}
	lf := w.Len()
	sd := &StreamDec{
		w:       w,
		levels:  levels,
		span:    maxSpan,
		lev:     make([]decLevel, levels),
		scratch: make([][]float64, levels+1),
	}
	// The synthesis chain lags the push frontier by about lf per level
	// doubling (lag_L ≈ lf·2^L), so each coefficient ring must retain the
	// reconstruction span plus that lag, both halved per level.
	lag := lf << uint(levels)
	inFirst := 0
	for l := 0; l < levels; l++ {
		cap := (maxSpan+2*lag)>>uint(l+1) + 4*lf + 16
		sd.lev[l] = decLevel{
			in:      make([]float64, lf),
			inFirst: inFirst,
			inNext:  inFirst,
			firstK:  (inFirst + lf - 1) / 2,
			approx:  make([]float64, cap),
			detail:  make([]float64, cap),
		}
		sd.lev[l].nextK = sd.lev[l].firstK
		inFirst = sd.lev[l].firstK
	}
	for l := 1; l <= levels; l++ {
		sd.scratch[l] = make([]float64, maxSpan>>uint(l)+2*lf+8)
	}
	return sd, nil
}

// Levels returns the number of analysis levels.
func (sd *StreamDec) Levels() int { return sd.levels }

// Pushed returns the number of samples consumed so far.
func (sd *StreamDec) Pushed() int { return sd.lev[0].inNext }

// FirstCoef returns the absolute index of the first interior coefficient
// at 1-based level l.
func (sd *StreamDec) FirstCoef(l int) int { return sd.lev[l-1].firstK }

// CoefCount returns the exclusive upper coefficient index at 1-based
// level l.
func (sd *StreamDec) CoefCount(l int) int { return sd.lev[l-1].nextK }

// Reset re-anchors the analyzer on a fresh stream without reallocating.
func (sd *StreamDec) Reset() {
	for l := range sd.lev {
		lev := &sd.lev[l]
		lev.inNext = lev.inFirst
		lev.nextK = lev.firstK
	}
}

// Push appends the next sample and cascades any newly complete
// coefficients through the levels.
func (sd *StreamDec) Push(v float64) {
	sd.pushLevel(0, v)
}

// pushLevel feeds one input into level l (0-based), emitting a coefficient
// pair when the input support of the next one is complete.
func (sd *StreamDec) pushLevel(l int, v float64) {
	lf := sd.w.Len()
	lev := &sd.lev[l]
	t := lev.inNext
	lev.in[t%lf] = v
	lev.inNext++
	if t%2 != 1 {
		return
	}
	// Batch coefficient k consumes inputs [2k+2-lf, 2k+1]; it completes
	// when t = 2k+1 arrives and is interior once its support does not
	// cross this level's first input.
	k := (t - 1) / 2
	if k < lev.firstK {
		return
	}
	var sa, sdet float64
	for j := 0; j < lf; j++ {
		x := lev.in[(t-j)%lf]
		sa += x * sd.w.DecLo[j]
		sdet += x * sd.w.DecHi[j]
	}
	c := len(lev.approx)
	lev.approx[k%c] = sa
	lev.detail[k%c] = sdet
	lev.nextK = k + 1
	if l+1 < sd.levels {
		sd.pushLevel(l+1, sa)
	}
}

// ReconRange returns the absolute signal-index interval [lo, hi) currently
// reconstructible: hi is limited by the deepest level's coefficient
// frontier folding back up through the synthesis chain, lo by the interior
// boundary and coefficient-ring retention.
func (sd *StreamDec) ReconRange() (lo, hi int) {
	lf := sd.w.Len()
	deep := &sd.lev[sd.levels-1]
	hi = deep.nextK
	lo = deep.firstK
	if retain := deep.nextK - len(deep.approx); retain > lo {
		lo = retain
	}
	for l := sd.levels - 1; l >= 0; l-- {
		lev := &sd.lev[l]
		// Values at index i of this level's input stream need child
		// coefficients k ≤ (i+lf-2)/2 and k ≥ floor(i/2).
		hiK := hi
		if lev.nextK < hiK {
			hiK = lev.nextK
		}
		loK := lo
		if lev.firstK > loK {
			loK = lev.firstK
		}
		if retain := lev.nextK - len(lev.approx); retain > loK {
			loK = retain
		}
		hi = 2*hiK + 2 - lf
		lo = 2 * loK
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Reconstruct synthesizes the band-selective signal over absolute indices
// [i0, i1) into dst (len i1-i0): keepApprox keeps the level-L
// approximation band and keepDetails (1-based level l at index l-1, nil
// keeps none) selects detail bands, mirroring Decomposition.reconstruct.
// The window must lie within ReconRange and be at most maxSpan wide.
func (sd *StreamDec) Reconstruct(keepApprox bool, keepDetails []bool, i0, i1 int, dst []float64) error {
	if i1 < i0 || i1-i0 > sd.span {
		return fmt.Errorf("wavelet: reconstruction window [%d, %d) invalid or wider than %d", i0, i1, sd.span)
	}
	if len(dst) < i1-i0 {
		return fmt.Errorf("wavelet: dst holds %d values, need %d", len(dst), i1-i0)
	}
	lo, hi := sd.ReconRange()
	if i0 < lo || i1 > hi {
		return fmt.Errorf("wavelet: window [%d, %d) outside reconstructible range [%d, %d)", i0, i1, lo, hi)
	}
	sd.synth(0, i0, i1, keepApprox, keepDetails, dst[:i1-i0])
	return nil
}

// synth computes the kept-band contribution to the level-l input stream
// (level 0 = the signal) over absolute indices [i0, i1).
func (sd *StreamDec) synth(l, i0, i1 int, keepApprox bool, keepDetails []bool, dst []float64) {
	lf := sd.w.Len()
	lev := &sd.lev[l]
	c0 := i0 / 2
	c1 := (i1-1+lf-2)/2 + 1

	approx := sd.scratch[l+1][:c1-c0]
	if l+1 == sd.levels {
		ringCap := len(lev.approx)
		for k := c0; k < c1; k++ {
			if keepApprox {
				approx[k-c0] = lev.approx[k%ringCap]
			} else {
				approx[k-c0] = 0
			}
		}
	} else {
		sd.synth(l+1, c0, c1, keepApprox, keepDetails, approx)
	}

	keepDet := keepDetails != nil && l < len(keepDetails) && keepDetails[l]
	ringCap := len(lev.detail)
	for i := i0; i < i1; i++ {
		kLo := i / 2
		kHi := (i + lf - 2) / 2
		var acc float64
		for k := kLo; k <= kHi; k++ {
			j := i + lf - 2 - 2*k
			acc += approx[k-c0] * sd.w.RecLo[j]
			if keepDet {
				acc += lev.detail[k%ringCap] * sd.w.RecHi[j]
			}
		}
		dst[i-i0] = acc
	}
}
