package wavelet

import (
	"math"
	"math/rand"
	"testing"
)

// streamSignal builds a breathing-like test signal with noise.
func streamSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / 20
		x[i] = math.Sin(2*math.Pi*0.3*ti) + 0.4*math.Sin(2*math.Pi*1.7*ti+1) + 0.05*rng.NormFloat64()
	}
	return x
}

func TestStreamDecMatchesBatchCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w, err := Daubechies(4)
	if err != nil {
		t.Fatal(err)
	}
	const (
		n      = 1600
		levels = 4
	)
	x := streamSignal(rng, n)
	batch, err := Wavedec(x, w, ModeSymmetric, levels)
	if err != nil {
		t.Fatal(err)
	}

	sd, err := NewStreamDec(w, levels, 1200)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		sd.Push(v)
	}
	if sd.Pushed() != n {
		t.Fatalf("pushed %d, want %d", sd.Pushed(), n)
	}

	lf := w.Len()
	// Streaming emits interior coefficients on the batch grid; compare a
	// margin away from both batch edges where extension effects cannot
	// reach even after cascading.
	cur := batch.Lengths // input length per level
	for lev := 1; lev <= levels; lev++ {
		var coefs []float64
		if lev == levels {
			coefs = batch.Approx
		} else {
			// Recompute the batch approx at this level for comparison.
			c := x
			for i := 0; i < lev; i++ {
				c, _ = DWT(c, w, ModeSymmetric)
			}
			coefs = c
		}
		det := batch.Details[lev-1]
		first := sd.FirstCoef(lev)
		count := sd.CoefCount(lev)
		if count <= first {
			t.Fatalf("level %d emitted no coefficients", lev)
		}
		levState := &sd.lev[lev-1]
		ringCap := len(levState.approx)
		// Edge margin grows with level (lf per cascaded level is ample)
		// and reads must stay within the ring's retention window.
		margin := first + lf
		if retain := count - ringCap; retain > margin {
			margin = retain
		}
		hi := count - lf
		if hi > len(det) {
			hi = len(det)
		}
		checked := 0
		for k := margin; k < hi; k++ {
			ga := levState.approx[k%ringCap]
			gd := levState.detail[k%ringCap]
			if d := math.Abs(ga - coefs[k]); d > 1e-10 {
				t.Fatalf("level %d approx[%d]: streaming %g vs batch %g", lev, k, ga, coefs[k])
			}
			if d := math.Abs(gd - det[k]); d > 1e-10 {
				t.Fatalf("level %d detail[%d]: streaming %g vs batch %g", lev, k, gd, det[k])
			}
			checked++
		}
		if checked < 10 {
			t.Fatalf("level %d compared only %d interior coefficients", lev, checked)
		}
	}
	_ = cur
}

func TestStreamDecReconstructMatchesBatchBands(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, err := Daubechies(4)
	if err != nil {
		t.Fatal(err)
	}
	const (
		n      = 2000
		levels = 4
		span   = 600
	)
	x := streamSignal(rng, n)
	batch, err := Wavedec(x, w, ModeSymmetric, levels)
	if err != nil {
		t.Fatal(err)
	}
	breathingBatch, err := batch.ReconstructApprox()
	if err != nil {
		t.Fatal(err)
	}
	heartBatch, err := batch.ReconstructDetails(levels-1, levels)
	if err != nil {
		t.Fatal(err)
	}

	sd, err := NewStreamDec(w, levels, span)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		sd.Push(v)
	}
	lo, hi := sd.ReconRange()
	if hi-lo < span {
		t.Fatalf("reconstructible range [%d, %d) narrower than span %d", lo, hi, span)
	}
	// Compare away from the batch edges, where batch extension effects
	// from either end cannot reach.
	edge := w.Len() << uint(levels+1)
	i0, i1 := lo, hi
	if i0 < edge {
		i0 = edge
	}
	if i1 > n-edge {
		i1 = n - edge
	}
	if i1-i0 > span {
		i0 = i1 - span
	}
	if i1 <= i0 {
		t.Fatalf("no interior overlap to compare: [%d, %d)", i0, i1)
	}

	dst := make([]float64, i1-i0)
	keep := make([]bool, levels)
	if err := sd.Reconstruct(true, keep, i0, i1, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if d := math.Abs(dst[i] - breathingBatch[i0+i]); d > 1e-9 {
			t.Fatalf("breathing[%d]: streaming %g vs batch %g (diff %g)", i0+i, dst[i], breathingBatch[i0+i], d)
		}
	}

	keep[levels-2], keep[levels-1] = true, true
	if err := sd.Reconstruct(false, keep, i0, i1, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if d := math.Abs(dst[i] - heartBatch[i0+i]); d > 1e-9 {
			t.Fatalf("heart[%d]: streaming %g vs batch %g (diff %g)", i0+i, dst[i], heartBatch[i0+i], d)
		}
	}
}

func TestStreamDecIncrementalAdvance(t *testing.T) {
	// Reconstructed values must be stride-invariant: reconstructing an
	// index early and again after more pushes gives the same value.
	rng := rand.New(rand.NewSource(8))
	w, err := Daubechies(4)
	if err != nil {
		t.Fatal(err)
	}
	const levels = 4
	x := streamSignal(rng, 3000)
	sd, err := NewStreamDec(w, levels, 400)
	if err != nil {
		t.Fatal(err)
	}
	keep := make([]bool, levels)
	first := make(map[int]float64)
	read := func() {
		lo, hi := sd.ReconRange()
		if hi-lo > 400 {
			lo = hi - 400
		}
		if hi <= lo {
			return
		}
		dst := make([]float64, hi-lo)
		if err := sd.Reconstruct(true, keep, lo, hi, dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			idx := lo + i
			if prev, ok := first[idx]; ok {
				if v != prev {
					t.Fatalf("index %d changed between strides: %g then %g", idx, prev, v)
				}
			} else {
				first[idx] = v
			}
		}
	}
	for i, v := range x {
		sd.Push(v)
		if i%137 == 0 {
			read()
		}
	}
	read()
	if len(first) < 1000 {
		t.Fatalf("only %d indices exercised", len(first))
	}
}

func TestStreamDecResetAndErrors(t *testing.T) {
	w, err := Daubechies(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamDec(w, 0, 100); err == nil {
		t.Fatal("expected error for zero levels")
	}
	if _, err := NewStreamDec(w, 2, 0); err == nil {
		t.Fatal("expected error for zero span")
	}
	sd, err := NewStreamDec(w, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := streamSignal(rng, 1000)
	for _, v := range x {
		sd.Push(v)
	}
	lo, hi := sd.ReconRange()
	if hi <= lo {
		t.Fatal("no reconstructible range after 1000 samples")
	}
	dst := make([]float64, 10)
	if err := sd.Reconstruct(true, nil, hi, hi+10, dst); err == nil {
		t.Fatal("expected range error past the frontier")
	}
	if err := sd.Reconstruct(true, nil, lo, lo+300, make([]float64, 300)); err == nil {
		t.Fatal("expected span error for window wider than max")
	}

	sd.Reset()
	if l, h := sd.ReconRange(); h > l {
		t.Fatalf("range [%d, %d) non-empty after reset", l, h)
	}
	for _, v := range x {
		sd.Push(v)
	}
	lo2, hi2 := sd.ReconRange()
	if lo2 != lo || hi2 != hi {
		t.Fatalf("range after reset [%d, %d) differs from first pass [%d, %d)", lo2, hi2, lo, hi)
	}
}
