package wavelet

import (
	"fmt"
)

// SWTDecomposition is a stationary (undecimated, "à trous") wavelet
// decomposition. Unlike the critically-sampled DWT, every band keeps the
// full signal length and the transform is shift-invariant — single-band
// reconstructions are therefore free of the aliasing images that a
// decimated filter bank produces, at 2× the cost per level.
type SWTDecomposition struct {
	// Approx is the level-L approximation at full rate.
	Approx []float64
	// Details[l-1] is the level-l detail at full rate (level 1 finest).
	Details [][]float64

	wavelet *Wavelet
	levels  int
}

// Levels returns the decomposition depth L.
func (d *SWTDecomposition) Levels() int { return d.levels }

// SWT computes a level-`levels` stationary wavelet decomposition of x
// using periodic boundary handling. The signal length must be at least the
// dilated filter length of the deepest level (2^(levels-1)·(filterLen-1)+1).
func SWT(x []float64, w *Wavelet, levels int) (*SWTDecomposition, error) {
	if levels < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadLevel, levels)
	}
	n := len(x)
	maxDilated := (w.Len()-1)*(1<<(levels-1)) + 1
	if n < maxDilated {
		return nil, fmt.Errorf("%w: %d samples < dilated filter %d at level %d",
			ErrBadLevel, n, maxDilated, levels)
	}
	d := &SWTDecomposition{
		Details: make([][]float64, 0, levels),
		wavelet: w,
		levels:  levels,
	}
	approx := make([]float64, n)
	copy(approx, x)
	for lev := 0; lev < levels; lev++ {
		dilation := 1 << lev
		nextApprox := make([]float64, n)
		detail := make([]float64, n)
		// À trous filtering: filters dilated by 2^lev, no downsampling.
		for i := 0; i < n; i++ {
			var sa, sd float64
			for j := 0; j < w.Len(); j++ {
				idx := i - j*dilation
				idx %= n
				if idx < 0 {
					idx += n
				}
				sa += approx[idx] * w.DecLo[j]
				sd += approx[idx] * w.DecHi[j]
			}
			nextApprox[i] = sa
			detail[i] = sd
		}
		d.Details = append(d.Details, detail)
		approx = nextApprox
	}
	d.Approx = approx
	return d, nil
}

// ISWT reconstructs the signal from all bands. For each level the inverse
// à trous step averages the two half-phase inverse filters, which for
// orthonormal filter pairs reduces to correlating with the synthesis
// filters and halving.
func (d *SWTDecomposition) ISWT() ([]float64, error) {
	return d.reconstruct(true, nil)
}

// ReconstructApprox rebuilds the signal from the approximation band only.
func (d *SWTDecomposition) ReconstructApprox() ([]float64, error) {
	keep := make([]bool, d.levels)
	return d.reconstruct(true, keep)
}

// ReconstructDetails rebuilds the signal from the selected detail levels
// only (1-based; level 1 is the finest).
func (d *SWTDecomposition) ReconstructDetails(levels ...int) ([]float64, error) {
	keep := make([]bool, d.levels)
	for _, lev := range levels {
		if lev < 1 || lev > d.levels {
			return nil, fmt.Errorf("%w: detail level %d of %d", ErrBadLevel, lev, d.levels)
		}
		keep[lev-1] = true
	}
	return d.reconstruct(false, keep)
}

// reconstruct runs the inverse à trous cascade keeping only the selected
// bands.
func (d *SWTDecomposition) reconstruct(keepApprox bool, keepDetails []bool) ([]float64, error) {
	if len(d.Approx) == 0 {
		return nil, fmt.Errorf("wavelet: empty SWT decomposition")
	}
	n := len(d.Approx)
	w := d.wavelet
	cur := make([]float64, n)
	if keepApprox {
		copy(cur, d.Approx)
	}
	zero := make([]float64, n)
	for lev := d.levels - 1; lev >= 0; lev-- {
		detail := d.Details[lev]
		if keepDetails != nil && !keepDetails[lev] {
			detail = zero
		}
		dilation := 1 << lev
		next := make([]float64, n)
		// Inverse step: correlate (not convolve) with the analysis filters
		// at the same dilation. The undecimated frame is 2× redundant per
		// level, so the exact dual synthesis carries a factor of 1/2.
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < w.Len(); j++ {
				idx := i + j*dilation
				idx %= n
				if idx < 0 {
					idx += n
				}
				s += cur[idx]*w.DecLo[j] + detail[idx]*w.DecHi[j]
			}
			next[i] = s / 2
		}
		cur = next
	}
	return cur, nil
}
