package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: ISWT(SWT(x)) == x for random signals, wavelets and depths.
func TestSWTPerfectReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		order := 1 + r.Intn(6)
		w, err := Daubechies(order)
		if err != nil {
			return false
		}
		levels := 1 + r.Intn(4)
		minLen := (w.Len()-1)*(1<<(levels-1)) + 1
		n := minLen + r.Intn(300)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		d, err := SWT(x, w, levels)
		if err != nil {
			return false
		}
		y, err := d.ISWT()
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: band reconstructions are additive.
func TestSWTBandAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w, err := Daubechies(4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	d, err := SWT(x, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := d.ReconstructApprox()
	if err != nil {
		t.Fatal(err)
	}
	for lev := 1; lev <= 4; lev++ {
		band, err := d.ReconstructDetails(lev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sum {
			sum[i] += band[i]
		}
	}
	for i := range x {
		if math.Abs(sum[i]-x[i]) > 1e-8 {
			t.Fatalf("additivity failed at %d: %v != %v", i, sum[i], x[i])
		}
	}
}

// The motivating property over the decimated DWT: a strong tone below the
// band edge must NOT image into the β3+β4 band of a single-band SWT
// reconstruction.
func TestSWTDetailBandHasNoAliasImage(t *testing.T) {
	fs := 20.0
	n := 1024
	w, err := Daubechies(4)
	if err != nil {
		t.Fatal(err)
	}
	// Strong 0.45 Hz "breathing" + weak 1.8 Hz "heart".
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 1.0*math.Sin(2*math.Pi*0.45*ti) + 0.02*math.Sin(2*math.Pi*1.8*ti)
	}
	d, err := SWT(x, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	heart, err := d.ReconstructDetails(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The image frequency of the decimated transform would be
	// 1.25-0.45 = 0.80 Hz. Compare the energy near 0.80 vs near 1.8.
	imageMag := toneMagnitude(heart, fs, 0.80)
	heartMag := toneMagnitude(heart, fs, 1.8)
	if imageMag > heartMag {
		t.Errorf("alias image (%.4g at 0.80 Hz) exceeds heart line (%.4g at 1.8 Hz)",
			imageMag, heartMag)
	}
}

// toneMagnitude estimates the amplitude of a tone at f via correlation.
func toneMagnitude(x []float64, fs, f float64) float64 {
	var re, im float64
	for i, v := range x {
		re += v * math.Cos(2*math.Pi*f*float64(i)/fs)
		im += v * math.Sin(2*math.Pi*f*float64(i)/fs)
	}
	return 2 * math.Hypot(re, im) / float64(len(x))
}

// Shift invariance: shifting the input circularly shifts every band.
func TestSWTShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := Haar()
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	shift := 5
	shifted := make([]float64, n)
	for i := range x {
		shifted[(i+shift)%n] = x[i]
	}
	d1, err := SWT(x, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := SWT(shifted, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(d1.Approx[i]-d2.Approx[(i+shift)%n]) > 1e-10 {
			t.Fatalf("approx not shift-covariant at %d", i)
		}
		for lev := range d1.Details {
			if math.Abs(d1.Details[lev][i]-d2.Details[lev][(i+shift)%n]) > 1e-10 {
				t.Fatalf("detail %d not shift-covariant at %d", lev+1, i)
			}
		}
	}
}

func TestSWTErrors(t *testing.T) {
	w, err := Daubechies(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SWT(make([]float64, 100), w, 0); err == nil {
		t.Error("want error for zero levels")
	}
	if _, err := SWT(make([]float64, 10), w, 4); err == nil {
		t.Error("want error for short signal")
	}
	d, err := SWT(make([]float64, 200), w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReconstructDetails(0); err == nil {
		t.Error("want error for detail level 0")
	}
	if _, err := d.ReconstructDetails(3); err == nil {
		t.Error("want error for detail level beyond depth")
	}
	var empty SWTDecomposition
	if _, err := empty.ISWT(); err == nil {
		t.Error("want error for empty decomposition")
	}
}

func BenchmarkSWTDb4L4(b *testing.B) {
	w, err := Daubechies(4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SWT(x, w, 4); err != nil {
			b.Fatal(err)
		}
	}
}
