// Package wavelet implements the discrete wavelet transform used by
// PhaseBeat's denoising stage: Daubechies filter construction (by spectral
// factorization — no coefficient tables), single- and multi-level DWT and
// inverse DWT compatible with the MATLAB/pywt convolution-downsampling
// convention, and band-selective reconstruction (keep the level-L
// approximation for the breathing signal, keep β_{L-1}+β_L for the heart
// signal).
package wavelet

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"phasebeat/internal/linalg"
)

// ErrBadLevel reports an invalid decomposition level for the signal length.
var ErrBadLevel = errors.New("wavelet: invalid decomposition level")

// Wavelet is an orthogonal two-channel filter bank.
type Wavelet struct {
	// Name identifies the wavelet (e.g. "db4").
	Name string
	// DecLo and DecHi are the analysis low- and high-pass filters.
	DecLo, DecHi []float64
	// RecLo and RecHi are the synthesis low- and high-pass filters.
	RecLo, RecHi []float64
}

// Len returns the filter length.
func (w *Wavelet) Len() int { return len(w.RecLo) }

// Haar returns the db1/Haar wavelet.
func Haar() *Wavelet {
	w, err := Daubechies(1)
	if err != nil {
		// Daubechies(1) is closed-form and cannot fail.
		panic(fmt.Sprintf("wavelet: Haar construction failed: %v", err))
	}
	return w
}

// Daubechies constructs the dbN wavelet (filter length 2N) for 1 <= N <= 12
// by spectral factorization: the roots of the Daubechies polynomial
// P(y) = Σ_k C(N-1+k, k) yᵏ are mapped to z-plane root pairs and the
// minimum-phase factor is kept.
func Daubechies(n int) (*Wavelet, error) {
	if n < 1 || n > 12 {
		return nil, fmt.Errorf("wavelet: db order %d outside [1, 12]", n)
	}
	name := fmt.Sprintf("db%d", n)
	if n == 1 {
		s := math.Sqrt2 / 2
		return fromRecLo(name, []float64{s, s}), nil
	}

	// P(y) = Σ_{k=0}^{N-1} binom(N-1+k, k) y^k.
	pCoeffs := make([]float64, n)
	for k := 0; k < n; k++ {
		pCoeffs[k] = binomial(n-1+k, k)
	}
	yRoots, err := linalg.NewPolyReal(pCoeffs).Roots()
	if err != nil {
		return nil, fmt.Errorf("wavelet: db%d factorization: %w", n, err)
	}

	// Each y-root maps to the quadratic z² + (4y-2)z + 1 = 0; keep the root
	// inside the unit circle (minimum phase).
	zRoots := make([]complex128, 0, n-1)
	for _, y := range yRoots {
		b := 4*y - 2
		disc := cmplx.Sqrt(b*b - 4)
		z1 := (-b + disc) / 2
		z2 := (-b - disc) / 2
		if cmplx.Abs(z1) <= cmplx.Abs(z2) {
			zRoots = append(zRoots, z1)
		} else {
			zRoots = append(zRoots, z2)
		}
	}

	// B(x) = (1+x)^N · Π (x - z_i); ascending coefficients.
	coeffs := []complex128{1}
	for i := 0; i < n; i++ {
		coeffs = polyMul(coeffs, []complex128{1, 1}) // (1 + x)
	}
	for _, z := range zRoots {
		coeffs = polyMul(coeffs, []complex128{-z, 1}) // (x - z)
	}
	if len(coeffs) != 2*n {
		return nil, fmt.Errorf("wavelet: db%d produced %d taps, want %d", n, len(coeffs), 2*n)
	}

	// Normalize to Σh = √2 and reverse into the pywt rec_lo ordering
	// (largest-magnitude taps first).
	var sum complex128
	for _, c := range coeffs {
		sum += c
	}
	recLo := make([]float64, 2*n)
	for k := range recLo {
		recLo[k] = real(coeffs[2*n-1-k] / sum * complex(math.Sqrt2, 0))
	}
	return fromRecLo(name, recLo), nil
}

// fromRecLo derives the full orthogonal filter bank from the synthesis
// low-pass filter using the pywt conventions:
//
//	dec_lo = reverse(rec_lo)
//	rec_hi[k] = (-1)^k rec_lo[L-1-k]
//	dec_hi = reverse(rec_hi)
func fromRecLo(name string, recLo []float64) *Wavelet {
	l := len(recLo)
	w := &Wavelet{
		Name:  name,
		RecLo: recLo,
		DecLo: make([]float64, l),
		RecHi: make([]float64, l),
		DecHi: make([]float64, l),
	}
	for k := 0; k < l; k++ {
		w.DecLo[k] = recLo[l-1-k]
		sign := 1.0
		if k%2 == 1 {
			sign = -1
		}
		w.RecHi[k] = sign * recLo[l-1-k]
	}
	for k := 0; k < l; k++ {
		w.DecHi[k] = w.RecHi[l-1-k]
	}
	return w
}

// polyMul multiplies two ascending-order complex polynomials.
func polyMul(a, b []complex128) []complex128 {
	out := make([]complex128, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// binomial returns C(n, k) as a float64.
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}
