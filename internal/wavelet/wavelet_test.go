package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Literature values for db2 and db4 rec_lo (pywt/MATLAB), to pin the
// spectral-factorization construction and its ordering convention.
var (
	db2RecLo = []float64{
		0.48296291314469025, 0.8365163037378079,
		0.22414386804185735, -0.12940952255092145,
	}
	db4RecLo = []float64{
		0.23037781330885523, 0.7148465705525415,
		0.6308807679295904, -0.02798376941698385,
		-0.18703481171888114, 0.030841381835986965,
		0.032883011666982945, -0.010597401784997278,
	}
)

func TestDaubechiesMatchesLiterature(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want []float64
	}{
		{2, db2RecLo},
		{4, db4RecLo},
	} {
		w, err := Daubechies(tc.n)
		if err != nil {
			t.Fatalf("db%d: %v", tc.n, err)
		}
		if len(w.RecLo) != 2*tc.n {
			t.Fatalf("db%d: length %d, want %d", tc.n, len(w.RecLo), 2*tc.n)
		}
		for k, want := range tc.want {
			if math.Abs(w.RecLo[k]-want) > 1e-9 {
				t.Errorf("db%d rec_lo[%d] = %v, want %v", tc.n, k, w.RecLo[k], want)
			}
		}
	}
}

func TestDaubechiesOrthonormality(t *testing.T) {
	for n := 1; n <= 12; n++ {
		w, err := Daubechies(n)
		if err != nil {
			t.Fatalf("db%d: %v", n, err)
		}
		h := w.RecLo
		// Σh = √2.
		var sum float64
		for _, v := range h {
			sum += v
		}
		if math.Abs(sum-math.Sqrt2) > 1e-8 {
			t.Errorf("db%d: Σh = %v, want √2", n, sum)
		}
		// Σ h[k] h[k+2m] = δ_m.
		for m := 0; m < n; m++ {
			var dot float64
			for k := 0; k+2*m < len(h); k++ {
				dot += h[k] * h[k+2*m]
			}
			want := 0.0
			if m == 0 {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("db%d: shift-%d autocorrelation = %v, want %v", n, 2*m, dot, want)
			}
		}
		// High-pass has zero DC.
		var hiSum float64
		for _, v := range w.RecHi {
			hiSum += v
		}
		if math.Abs(hiSum) > 1e-8 {
			t.Errorf("db%d: Σg = %v, want 0", n, hiSum)
		}
		// Vanishing moments: Σ k^p g[k] = 0 for p < n (check p=1 for n>=2).
		if n >= 2 {
			var m1 float64
			for k, v := range w.RecHi {
				m1 += float64(k) * v
			}
			if math.Abs(m1) > 1e-6 {
				t.Errorf("db%d: first moment of g = %v, want 0", n, m1)
			}
		}
	}
}

func TestDaubechiesRange(t *testing.T) {
	if _, err := Daubechies(0); err == nil {
		t.Error("want error for db0")
	}
	if _, err := Daubechies(13); err == nil {
		t.Error("want error for db13")
	}
}

func TestHaar(t *testing.T) {
	w := Haar()
	s := math.Sqrt2 / 2
	if math.Abs(w.RecLo[0]-s) > 1e-15 || math.Abs(w.RecLo[1]-s) > 1e-15 {
		t.Errorf("Haar rec_lo = %v", w.RecLo)
	}
	if math.Abs(w.DecHi[0]+s) > 1e-15 || math.Abs(w.DecHi[1]-s) > 1e-15 {
		t.Errorf("Haar dec_hi = %v", w.DecHi)
	}
}

func TestDWTHaarKnown(t *testing.T) {
	w := Haar()
	x := []float64{1, 3, 5, 7}
	a, d := DWT(x, w, ModeZero)
	// Pairwise sums/differences scaled by 1/√2 (plus one boundary coeff).
	s := math.Sqrt2 / 2
	wantA := []float64{(1 + 3) * s, (5 + 7) * s}
	wantD := []float64{(3 - 1) * s, (7 - 5) * s}
	if len(a) != 2 {
		t.Fatalf("approx length = %d, want 2", len(a))
	}
	for i := range wantA {
		if math.Abs(a[i]-wantA[i]) > 1e-12 {
			t.Errorf("a[%d] = %v, want %v", i, a[i], wantA[i])
		}
		if math.Abs(math.Abs(d[i])-math.Abs(wantD[i])) > 1e-12 {
			t.Errorf("|d[%d]| = %v, want %v", i, math.Abs(d[i]), math.Abs(wantD[i]))
		}
	}
}

// Property: IDWT(DWT(x)) == x for every wavelet and mode (MATLAB-style
// perfect reconstruction).
func TestSingleLevelPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, mode := range []ExtensionMode{ModeSymmetric, ModeZero, ModePeriodic} {
		for n := 1; n <= 10; n++ {
			w, err := Daubechies(n)
			if err != nil {
				t.Fatalf("db%d: %v", n, err)
			}
			for _, length := range []int{w.Len(), w.Len() + 1, 50, 51, 128} {
				x := make([]float64, length)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				a, d := DWT(x, w, mode)
				y, err := IDWT(a, d, w, length)
				if err != nil {
					t.Fatalf("db%d %v n=%d: IDWT: %v", n, mode, length, err)
				}
				for i := range x {
					if math.Abs(x[i]-y[i]) > 1e-9 {
						t.Fatalf("db%d %v n=%d: PR failed at %d: %v != %v",
							n, mode, length, i, y[i], x[i])
					}
				}
			}
		}
	}
}

// Property: multi-level Waverec inverts Wavedec for random signals, depths
// and wavelets.
func TestWavedecWaverecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		order := 1 + r.Intn(6)
		w, err := Daubechies(order)
		if err != nil {
			return false
		}
		length := 64 + r.Intn(400)
		maxL := MaxLevel(length, w.Len())
		if maxL < 1 {
			return true
		}
		levels := 1 + r.Intn(maxL)
		mode := []ExtensionMode{ModeSymmetric, ModeZero, ModePeriodic}[r.Intn(3)]
		x := make([]float64, length)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		d, err := Wavedec(x, w, mode, levels)
		if err != nil {
			return false
		}
		y, err := d.Waverec()
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: band reconstructions are additive — approx-only plus all
// detail-only reconstructions equals the full signal.
func TestBandAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w, err := Daubechies(4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	d, err := Wavedec(x, w, ModeSymmetric, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := d.ReconstructApprox()
	if err != nil {
		t.Fatal(err)
	}
	for lev := 1; lev <= 4; lev++ {
		band, err := d.ReconstructDetails(lev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sum {
			sum[i] += band[i]
		}
	}
	for i := range x {
		if math.Abs(sum[i]-x[i]) > 1e-8 {
			t.Fatalf("additivity failed at %d: %v != %v", i, sum[i], x[i])
		}
	}
}

func TestApproxIsLowPass(t *testing.T) {
	// A low-frequency tone survives ReconstructApprox; a high-frequency
	// tone is routed to the details.
	fs := 20.0
	n := 1024
	w, err := Daubechies(4)
	if err != nil {
		t.Fatal(err)
	}
	low := make([]float64, n)  // 0.3 Hz — inside α4's [0, 0.625] Hz
	high := make([]float64, n) // 4 Hz — inside β2's [2.5, 5] Hz
	for i := range low {
		ti := float64(i) / fs
		low[i] = math.Sin(2 * math.Pi * 0.3 * ti)
		high[i] = math.Sin(2 * math.Pi * 4 * ti)
	}
	dLow, err := Wavedec(low, w, ModeSymmetric, 4)
	if err != nil {
		t.Fatal(err)
	}
	dHigh, err := Wavedec(high, w, ModeSymmetric, 4)
	if err != nil {
		t.Fatal(err)
	}
	aLow, err := dLow.ReconstructApprox()
	if err != nil {
		t.Fatal(err)
	}
	aHigh, err := dHigh.ReconstructApprox()
	if err != nil {
		t.Fatal(err)
	}
	if energy(aLow) < 0.8*energy(low) {
		t.Errorf("low tone attenuated by approx: %v vs %v", energy(aLow), energy(low))
	}
	if energy(aHigh) > 0.1*energy(high) {
		t.Errorf("high tone leaked into approx: %v vs %v", energy(aHigh), energy(high))
	}
	// And the heart band β3+β4 captures a 1.1 Hz tone.
	heart := make([]float64, n)
	for i := range heart {
		heart[i] = math.Sin(2 * math.Pi * 1.1 * float64(i) / fs)
	}
	dh, err := Wavedec(heart, w, ModeSymmetric, 4)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := dh.ReconstructDetails(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if energy(hb) < 0.5*energy(heart) {
		t.Errorf("heart band lost the 1.1 Hz tone: %v vs %v", energy(hb), energy(heart))
	}
}

func energy(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func TestWavedecErrors(t *testing.T) {
	w := Haar()
	if _, err := Wavedec(make([]float64, 100), w, ModeSymmetric, 0); err == nil {
		t.Error("want error for level 0")
	}
	if _, err := Wavedec(make([]float64, 8), w, ModeSymmetric, 10); err == nil {
		t.Error("want error for level deeper than MaxLevel")
	}
	d, err := Wavedec(make([]float64, 64), w, ModeSymmetric, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReconstructDetails(0); err == nil {
		t.Error("want error for detail level 0")
	}
	if _, err := d.ReconstructDetails(4); err == nil {
		t.Error("want error for detail level beyond L")
	}
}

func TestIDWTErrors(t *testing.T) {
	w := Haar()
	if _, err := IDWT([]float64{1}, []float64{1, 2}, w, 2); err == nil {
		t.Error("want error for mismatched coefficient lengths")
	}
	if _, err := IDWT(nil, nil, w, 0); err == nil {
		t.Error("want error for empty coefficients")
	}
	if _, err := IDWT([]float64{1}, []float64{1}, w, 50); err == nil {
		t.Error("want error for impossible output length")
	}
}

func TestMaxLevel(t *testing.T) {
	if got := MaxLevel(1024, 2); got != 10 {
		t.Errorf("MaxLevel(1024, haar) = %d, want 10", got)
	}
	if got := MaxLevel(500, 8); got != 6 {
		t.Errorf("MaxLevel(500, db4) = %d, want 6", got)
	}
	if got := MaxLevel(4, 8); got != 0 {
		t.Errorf("MaxLevel(4, db4) = %d, want 0", got)
	}
}

func TestBandFrequencies(t *testing.T) {
	lo, hi := BandFrequencies(20, 4, true)
	if lo != 0 || math.Abs(hi-0.625) > 1e-12 {
		t.Errorf("α4 band = [%v, %v], want [0, 0.625]", lo, hi)
	}
	lo, hi = BandFrequencies(20, 3, false)
	if math.Abs(lo-1.25) > 1e-12 || math.Abs(hi-2.5) > 1e-12 {
		t.Errorf("β3 band = [%v, %v], want [1.25, 2.5]", lo, hi)
	}
}

func TestExtensionModeString(t *testing.T) {
	if ModeSymmetric.String() != "symmetric" || ModeZero.String() != "zero" ||
		ModePeriodic.String() != "periodic" {
		t.Error("mode strings wrong")
	}
	if ExtensionMode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func BenchmarkWavedecDb4L4(b *testing.B) {
	w, err := Daubechies(4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Wavedec(x, w, ModeSymmetric, 4); err != nil {
			b.Fatal(err)
		}
	}
}
