// Package phasebeat is a from-scratch Go implementation of PhaseBeat
// (Wang, Yang, Mao — IEEE ICDCS 2017): contact-free breathing and heart
// rate monitoring from the CSI phase difference between two receive
// antennas of a commodity WiFi NIC.
//
// The package exposes the full system:
//
//   - batch processing of CSI traces (ProcessTrace) and realtime streaming
//     (NewMonitor / Monitor.Ingest),
//   - the physics-based CSI simulator that substitutes for Intel 5300
//     hardware (Simulate, Scenario), including the paper's NIC phase-error
//     model of eq. (3)-(4),
//   - the trace container with a binary codec (ReadTrace / WriteTrace),
//   - and the amplitude-based comparison method of Liu et al. [13]
//     (EstimateAmplitudeBaseline).
//
// A minimal session:
//
//	tr, truth, err := phasebeat.Simulate(phasebeat.Scenario{
//	    Kind:          phasebeat.ScenarioLaboratory,
//	    TxRxDistanceM: 3,
//	    NumPersons:    1,
//	    Seed:          1,
//	}, 60)
//	// handle err
//	res, err := phasebeat.ProcessTrace(tr)
//	// handle err
//	fmt.Printf("breathing %.1f bpm (truth %.1f)\n",
//	    res.Breathing.RateBPM, truth[0].BreathingBPM)
package phasebeat

import (
	"io"

	"phasebeat/internal/baseline"
	"phasebeat/internal/core"
	"phasebeat/internal/csisim"
	"phasebeat/internal/explain"
	"phasebeat/internal/metrics"
	"phasebeat/internal/store"
	"phasebeat/internal/trace"
)

// Re-exported core types. The aliases form the public facade over the
// internal packages; see each type's documentation there.
type (
	// Config holds every tunable of the PhaseBeat pipeline.
	Config = core.Config
	// Result is a batch pipeline output, including the intermediate
	// products the paper's figures visualize.
	Result = core.Result
	// BreathingEstimate is the single-person breathing result.
	BreathingEstimate = core.BreathingEstimate
	// HeartEstimate is the heart-rate result.
	HeartEstimate = core.HeartEstimate
	// MultiPersonEstimate is the root-MUSIC multi-person result.
	MultiPersonEstimate = core.MultiPersonEstimate
	// Monitor is the realtime streaming processor.
	Monitor = core.Monitor
	// MonitorConfig configures a Monitor.
	MonitorConfig = core.MonitorConfig
	// Update is one realtime estimate.
	Update = core.Update
	// Health is the Monitor's ingest-health summary: quarantine counts by
	// cause, gap resets, and backlog shedding. A copy rides on every
	// Update.
	Health = core.Health
	// EnvironmentState classifies a detection window.
	EnvironmentState = core.EnvironmentState
	// TrackPoint and TrackConfig belong to the offline sliding-window
	// rate tracker.
	TrackPoint  = core.TrackPoint
	TrackConfig = core.TrackConfig
	// ProcessorOption customizes ProcessTrace.
	ProcessorOption = core.Option
	// StageError tags a pipeline failure with the stage that produced it;
	// match the stage with errors.As and the cause with errors.Is.
	StageError = core.StageError
	// StageStats is one per-stage record delivered to a StageObserver.
	StageStats = core.StageStats
	// StageObserver receives start/end callbacks from every pipeline run.
	StageObserver = core.StageObserver
	// TimingObserver is a concurrency-safe StageObserver that aggregates
	// per-stage durations across runs.
	TimingObserver = core.TimingObserver
	// MetricsRegistry is a named collection of runtime metrics (counters,
	// gauges, latency histograms) with an expvar-style JSON snapshot; it
	// implements http.Handler. A nil registry is the disabled state: all
	// wiring that accepts one degrades to no-ops.
	MetricsRegistry = metrics.Registry
	// MetricsHistogram is a fixed-bucket, lock-free latency histogram.
	MetricsHistogram = metrics.Histogram
	// StageMetricsObserver is a StageObserver recording per-stage latency
	// histograms and error counters into a MetricsRegistry.
	StageMetricsObserver = core.StageMetrics
	// UpdateObserver receives every delivered Monitor update — the hook
	// the explain flight recorder rides on.
	UpdateObserver = core.UpdateObserver
	// ExplainConfig configures an ExplainRecorder; ExplainTrace is one
	// pipeline run's per-stage explanation; FlightDump is the bundle the
	// recorder writes when an anomaly trigger fires.
	ExplainConfig   = explain.Config
	ExplainRecorder = explain.Recorder
	ExplainTrace    = explain.Trace
	FlightDump      = explain.FlightDump
	// Stage evidence records carried inside an ExplainTrace.
	CalibrationEvidence = core.CalibrationEvidence
	GateEvidence        = core.GateEvidence
	SelectionEvidence   = core.SelectionEvidence
	DWTEvidence         = core.DWTEvidence
	EstimateEvidence    = core.EstimateEvidence

	// Trace is a CSI capture; Packet is one CSI measurement.
	Trace  = trace.Trace
	Packet = trace.Packet

	// Scenario describes a simulated deployment; ScenarioKind selects its
	// environment template; Person is a monitored subject; VitalTruth the
	// ground-truth rates.
	Scenario     = csisim.Scenario
	ScenarioKind = csisim.ScenarioKind
	Person       = csisim.Person
	VitalTruth   = csisim.VitalTruth
	// Simulator generates CSI packets for a configured scene.
	Simulator = csisim.Simulator
	// PacketSource is any producer of a CSI packet stream (the Simulator,
	// a FaultInjector, a replayer).
	PacketSource = csisim.PacketSource
	// FaultPlan configures the packet-stream fault-injection harness;
	// FaultStats counts what it did; FaultInjector applies a plan to a
	// PacketSource.
	FaultPlan     = csisim.FaultPlan
	FaultStats    = csisim.FaultStats
	FaultInjector = csisim.FaultInjector

	// BaselineConfig and BaselineEstimate belong to the amplitude-based
	// comparison method [13].
	BaselineConfig   = baseline.Config
	BaselineEstimate = baseline.Estimate

	// TraceStore is the tiered session trace store phasebeatd archives
	// into: per-session gzip blocks with downsample tiers, retention, and
	// crash recovery. TraceStoreConfig configures it; StoreMeta is a
	// stored session's stream metadata; StoreSessionInfo, StoreRangeResult
	// and StoreTierBin belong to its query API.
	TraceStore       = store.Store
	TraceStoreConfig = store.Config
	StoreMeta        = store.Meta
	StoreSessionInfo = store.SessionInfo
	StoreRangeResult = store.RangeResult
	StoreTierBin     = store.TierBin
)

// Environment detection states (paper Section III-B1).
const (
	EnvNoPerson   = core.EnvNoPerson
	EnvStationary = core.EnvStationary
	EnvMotion     = core.EnvMotion
)

// Scenario kinds matching the paper's three experimental setups.
const (
	ScenarioLaboratory  = csisim.ScenarioLaboratory
	ScenarioThroughWall = csisim.ScenarioThroughWall
	ScenarioCorridor    = csisim.ScenarioCorridor
)

// Errors exposed for matching with errors.Is.
var (
	// ErrNoData reports an empty or too-short input.
	ErrNoData = core.ErrNoData
	// ErrNotStationary reports that no usable stationary segment exists.
	ErrNotStationary = core.ErrNotStationary
	// ErrNonFinite reports NaN/Inf input data or a non-finite estimate.
	ErrNonFinite = core.ErrNonFinite
)

// DefaultConfig returns the paper's 400 Hz operating point.
func DefaultConfig() Config { return core.DefaultConfig() }

// ConfigForRate adapts the defaults to a different capture rate.
func ConfigForRate(sampleRate float64) Config { return core.ConfigForRate(sampleRate) }

// WithConfig overrides the pipeline configuration for ProcessTrace.
func WithConfig(cfg Config) ProcessorOption { return core.WithConfig(cfg) }

// WithPersons sets the monitored person count for ProcessTrace; above one,
// the root-MUSIC multi-person estimator runs.
func WithPersons(n int) ProcessorOption { return core.WithPersons(n) }

// WithObserver attaches a stage observer to ProcessTrace; it receives
// per-stage durations and data shapes as the pipeline runs.
func WithObserver(obs StageObserver) ProcessorOption { return core.WithObserver(obs) }

// NewTimingObserver returns an empty stage-timing collector; attach it via
// WithObserver or Config.Observer and render it with Table.
func NewTimingObserver() *TimingObserver { return core.NewTimingObserver() }

// NewMetricsRegistry returns an empty metrics registry. Mount it on an
// HTTP mux (it implements http.Handler), hand it to
// MonitorConfig.Metrics, attach NewStageMetricsObserver for batch runs,
// and export the trace-codec counters with RegisterTraceMetrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewStageMetricsObserver returns a StageObserver that records each
// stage completion into r as a latency histogram
// (pipeline.stage.<name>.seconds) and an error counter. A nil registry
// yields a disabled observer that CombineObservers drops.
func NewStageMetricsObserver(r *MetricsRegistry) *StageMetricsObserver {
	return core.NewStageMetrics(r)
}

// CombineObservers merges stage observers into one, skipping nils; it
// returns nil when nothing remains.
func CombineObservers(obs ...StageObserver) StageObserver { return core.CombineObservers(obs...) }

// RegisterTraceMetrics exports the trace codec's counters (traces and
// packets read/written, decode errors) into r under "trace.".
func RegisterTraceMetrics(r *MetricsRegistry) { trace.RegisterMetrics(r) }

// NewExplainRecorder returns a flight recorder assembling per-update
// explain traces. Wire it into a Monitor as both Pipeline.Observer (via
// CombineObservers) and MonitorConfig.UpdateObserver; for batch runs
// attach it with WithObserver and call RecordResult after ProcessTrace.
func NewExplainRecorder(cfg ExplainConfig) (*ExplainRecorder, error) {
	return explain.NewRecorder(cfg)
}

// PipelineStages lists the pipeline's stage names in execution order.
func PipelineStages() []string { return core.StageNames() }

// BreathingEstimators lists the registered breathing estimator backends
// selectable through Config.Estimator.
func BreathingEstimators() []string { return core.BreathingEstimatorNames() }

// HeartEstimators lists the registered heart estimator backends selectable
// through Config.HeartEstimator.
func HeartEstimators() []string { return core.HeartEstimatorNames() }

// ProcessTrace runs the full PhaseBeat pipeline over a complete trace.
func ProcessTrace(tr *Trace, opts ...ProcessorOption) (*Result, error) {
	p, err := core.NewProcessor(opts...)
	if err != nil {
		return nil, err
	}
	return p.Process(tr)
}

// DefaultMonitorConfig returns the realtime defaults (1-minute window,
// estimate every 5 s).
func DefaultMonitorConfig() MonitorConfig { return core.DefaultMonitorConfig() }

// NewMonitor starts a realtime monitor; feed it with Ingest and read
// Updates.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) { return core.NewMonitor(cfg) }

// DefaultTrackConfig returns the offline tracker defaults (60 s window,
// 10 s stride).
func DefaultTrackConfig() TrackConfig { return core.DefaultTrackConfig() }

// TrackRates produces a vital-sign time series over sliding windows of a
// recorded trace — the offline counterpart of the streaming Monitor.
func TrackRates(tr *Trace, cfg TrackConfig) ([]TrackPoint, error) {
	return core.TrackRates(tr, cfg)
}

// Simulate builds the scenario and generates durationS seconds of CSI,
// returning the trace and the per-person ground truth.
func Simulate(sc Scenario, durationS float64) (*Trace, []VitalTruth, error) {
	sim, err := sc.Build()
	if err != nil {
		return nil, nil, err
	}
	tr, err := sim.Generate(durationS)
	if err != nil {
		return nil, nil, err
	}
	return tr, sim.Truth(), nil
}

// NewSimulator builds a streaming simulator for the scenario (for feeding
// a Monitor in realtime).
func NewSimulator(sc Scenario) (*Simulator, error) { return sc.Build() }

// NewFaultInjector wraps a packet source with the fault-injection harness
// (loss bursts, reordering, timestamp jitter, NaN/Inf corruption, antenna
// dropouts, rate drift) for exercising the Monitor's quarantine and
// degradation paths.
func NewFaultInjector(src PacketSource, plan FaultPlan, seed int64) (*FaultInjector, error) {
	return csisim.NewFaultInjector(src, plan, seed)
}

// SimulateFixedRates builds a laboratory scene whose persons breathe at
// exactly the given rates — the controlled setup of the paper's Fig. 8.
func SimulateFixedRates(breathingBPM []float64, durationS float64, seed int64) (*Trace, []VitalTruth, error) {
	sim, err := csisim.FixedRatesScenario(breathingBPM, seed)
	if err != nil {
		return nil, nil, err
	}
	tr, err := sim.Generate(durationS)
	if err != nil {
		return nil, nil, err
	}
	return tr, sim.Truth(), nil
}

// ReadTrace decodes a binary trace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTrace encodes a trace in the binary format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// ReadTraceJSON decodes a JSON-lines trace (the interoperability format).
func ReadTraceJSON(r io.Reader) (*Trace, error) { return trace.ReadJSON(r) }

// ReadTraceAuto sniffs the stream and decodes any supported trace format:
// gzip-wrapped binary, plain binary or JSON lines.
func ReadTraceAuto(r io.Reader) (*Trace, error) { return trace.ReadAuto(r) }

// WriteTraceCompressed encodes a trace as gzip-wrapped binary (~3× smaller
// than plain binary).
func WriteTraceCompressed(w io.Writer, tr *Trace) error { return trace.WriteCompressed(w, tr) }

// WriteTraceJSON encodes a trace as JSON lines for consumption outside Go.
func WriteTraceJSON(w io.Writer, tr *Trace) error { return trace.WriteJSON(w, tr) }

// OpenTraceStore opens (or, unless read-only, creates) a tiered trace
// store — the archive phasebeatd writes with -store-dir. Open it with
// ReadOnly set to replay a daemon's store for a postmortem (see
// TraceStore.ReplayThroughMonitor).
func OpenTraceStore(cfg TraceStoreConfig) (*TraceStore, error) { return store.Open(cfg) }

// DefaultBaselineConfig returns the amplitude method's defaults.
func DefaultBaselineConfig() BaselineConfig { return baseline.DefaultConfig() }

// EstimateAmplitudeBaseline runs the amplitude-based method of [13] — the
// benchmark curve in the paper's Fig. 11.
func EstimateAmplitudeBaseline(tr *Trace, cfg BaselineConfig) (*BaselineEstimate, error) {
	return baseline.EstimateBreathing(tr, cfg)
}
