package phasebeat

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	tr, truth, err := Simulate(Scenario{
		Kind:          ScenarioLaboratory,
		TxRxDistanceM: 3,
		NumPersons:    1,
		Seed:          6,
	}, 60)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	res, err := ProcessTrace(tr)
	if err != nil {
		t.Fatalf("ProcessTrace: %v", err)
	}
	if res.Breathing == nil {
		t.Fatal("no breathing estimate")
	}
	if math.Abs(res.Breathing.RateBPM-truth[0].BreathingBPM) > 1 {
		t.Errorf("breathing %.2f, truth %.2f", res.Breathing.RateBPM, truth[0].BreathingBPM)
	}
}

func TestPublicAPIMultiPerson(t *testing.T) {
	tr, truth, err := SimulateFixedRates([]float64{13, 21}, 90, 9)
	if err != nil {
		t.Fatalf("SimulateFixedRates: %v", err)
	}
	res, err := ProcessTrace(tr, WithPersons(2))
	if err != nil {
		t.Fatalf("ProcessTrace: %v", err)
	}
	if res.MultiPerson == nil || len(res.MultiPerson.RatesBPM) != 2 {
		t.Fatalf("multi-person result: %+v", res.MultiPerson)
	}
	for i, want := range []float64{truth[0].BreathingBPM, truth[1].BreathingBPM} {
		if math.Abs(res.MultiPerson.RatesBPM[i]-want) > 1.5 {
			t.Errorf("rate[%d] = %.2f, want %.2f", i, res.MultiPerson.RatesBPM[i], want)
		}
	}
}

func TestPublicAPIBaseline(t *testing.T) {
	tr, truth, err := SimulateFixedRates([]float64{17}, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateAmplitudeBaseline(tr, DefaultBaselineConfig())
	if err != nil {
		t.Fatalf("EstimateAmplitudeBaseline: %v", err)
	}
	if math.Abs(est.BreathingBPM-truth[0].BreathingBPM) > 2.5 {
		t.Errorf("baseline breathing %.2f, truth %.2f", est.BreathingBPM, truth[0].BreathingBPM)
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	tr, _, err := Simulate(Scenario{
		Kind:          ScenarioCorridor,
		TxRxDistanceM: 5,
		NumPersons:    1,
		Seed:          2,
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got.Len() != tr.Len() || got.SampleRate != tr.SampleRate {
		t.Errorf("round trip mismatch: %d/%v vs %d/%v", got.Len(), got.SampleRate, tr.Len(), tr.SampleRate)
	}
}

func TestPublicAPIMonitor(t *testing.T) {
	sim, err := NewSimulator(Scenario{
		Kind:          ScenarioLaboratory,
		TxRxDistanceM: 3,
		NumPersons:    1,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMonitorConfig()
	cfg.WindowSeconds = 30
	cfg.UpdateEverySeconds = 30
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	go func() {
		for i := 0; i < int(31*cfg.SampleRate); i++ {
			if !m.Ingest(sim.NextPacket()) {
				return
			}
		}
	}()
	select {
	case u := <-m.Updates():
		if u.Err != nil {
			t.Fatalf("update error: %v", u.Err)
		}
		if u.Result == nil || u.Result.Breathing == nil {
			t.Fatal("missing breathing estimate")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no update within deadline")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	if _, err := ProcessTrace(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("want ErrNoData, got %v", err)
	}
	if _, _, err := Simulate(Scenario{Kind: ScenarioLaboratory}, 10); err == nil {
		t.Error("want error for zero distance")
	}
	bad := DefaultConfig()
	bad.TopK = 0
	if _, err := ProcessTrace(&Trace{}, WithConfig(bad)); err == nil {
		t.Error("want error for invalid config")
	}
	if DefaultConfig().DownsampleFactor != 20 {
		t.Error("unexpected default downsample factor")
	}
	if ConfigForRate(200).DownsampleFactor != 10 {
		t.Error("unexpected scaled downsample factor")
	}
}

func TestEnvironmentStateConstants(t *testing.T) {
	if EnvNoPerson.String() != "no-person" || EnvStationary.String() != "stationary" || EnvMotion.String() != "motion" {
		t.Error("state constants mismatch")
	}
}

func TestPublicAPITrackRates(t *testing.T) {
	tr, truth, err := SimulateFixedRates([]float64{14}, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrackConfig()
	cfg.WindowSeconds = 40
	cfg.StrideSeconds = 40
	points, err := TrackRates(tr, cfg)
	if err != nil {
		t.Fatalf("TrackRates: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, pt := range points {
		if pt.Err != nil {
			t.Fatalf("point error: %v", pt.Err)
		}
		if math.Abs(pt.BreathingBPM-truth[0].BreathingBPM) > 1 {
			t.Errorf("tracked %.2f, want %.2f", pt.BreathingBPM, truth[0].BreathingBPM)
		}
	}
}
